//! The Token Bucket Filter (TBF) qdisc: a single-class shaper.
//!
//! TBF is the textbook *shaper* FlowValve contrasts itself against: it
//! buffers non-conforming packets and releases them when tokens accrue,
//! which requires exactly the queue control NP hardware lacks. It serves
//! as the reference shaper for rate-conformance comparisons.

use std::sync::Arc;

use fv_telemetry::metrics::{Counter, Gauge};
use fv_telemetry::span::{SpanRecorder, Stage};
use fv_telemetry::trace::{EventRing, TraceKind};
use fv_telemetry::Registry;
use netstack::packet::Packet;
use sim_core::time::Nanos;
use sim_core::units::BitRate;

use crate::fifo::{PacketFifo, QueueDrop};

/// A token bucket filter.
///
/// # Example
///
/// ```
/// use netstack::flow::FlowKey;
/// use netstack::packet::{AppId, Packet, VfPort};
/// use qdisc::tbf::Tbf;
/// use sim_core::time::Nanos;
/// use sim_core::units::BitRate;
///
/// // 1 Gbps with a 10 KB burst.
/// let mut tbf = Tbf::new(BitRate::from_gbps(1.0), 10_000, 1 << 20, 1_000);
/// let flow = FlowKey::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
/// let pkt = Packet::new(0, flow, 1250, AppId(0), VfPort(0), Nanos::ZERO);
/// tbf.enqueue(pkt)?;
/// // Within the burst: releases immediately.
/// assert!(tbf.dequeue(Nanos::ZERO).is_some());
/// # Ok::<(), qdisc::fifo::QueueDrop>(())
/// ```
/// Registry handles mirroring the TBF counters. Attached via
/// [`Tbf::attach_telemetry`].
#[derive(Debug, Clone)]
struct TbfTelemetry {
    enqueued: Arc<Counter>,
    dequeued: Arc<Counter>,
    dequeued_bits: Arc<Counter>,
    drops: Arc<Counter>,
    drops_overpkts: Arc<Counter>,
    drops_overbytes: Arc<Counter>,
    backlog_pkts: Arc<Gauge>,
    ring: Arc<EventRing>,
    spans: SpanRecorder,
}

#[derive(Debug)]
pub struct Tbf {
    rate: BitRate,
    burst_bits: i64,
    tokens: i64,
    last: Nanos,
    queue: PacketFifo,
    telemetry: Option<TbfTelemetry>,
}

impl Tbf {
    /// Creates a TBF shaping to `rate` with `burst_bytes` of burst and the
    /// given queue limits.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero or `burst_bytes` is zero.
    pub fn new(rate: BitRate, burst_bytes: u64, queue_bytes: u64, queue_pkts: usize) -> Self {
        assert!(rate > BitRate::ZERO, "rate must be positive");
        assert!(burst_bytes > 0, "burst must be positive");
        let burst_bits = (burst_bytes * 8) as i64;
        Tbf {
            rate,
            burst_bits,
            tokens: burst_bits,
            last: Nanos::ZERO,
            queue: PacketFifo::new(queue_bytes, queue_pkts),
            telemetry: None,
        }
    }

    /// Mirrors this shaper's counters into `registry` under `tbf.*` —
    /// backlog overflows additionally trace [`TraceKind::TailDrop`]
    /// events, and drops are broken out by cause
    /// (`tbf.drops_overpkts` / `tbf.drops_overbytes`).
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = Some(TbfTelemetry {
            enqueued: registry.counter("tbf.enqueued"),
            dequeued: registry.counter("tbf.dequeued"),
            dequeued_bits: registry.counter("tbf.dequeued_bits"),
            drops: registry.counter("tbf.drops"),
            drops_overpkts: registry.counter("tbf.drops_overpkts"),
            drops_overbytes: registry.counter("tbf.drops_overbytes"),
            backlog_pkts: registry.gauge("tbf.backlog_pkts"),
            ring: registry.ring(),
            spans: SpanRecorder::new(registry),
        });
    }

    /// Queues a packet for shaping.
    ///
    /// # Errors
    ///
    /// [`QueueDrop::OverPkts`] / [`QueueDrop::OverBytes`] when the backlog
    /// is full, naming which limit refused the packet.
    pub fn enqueue(&mut self, pkt: Packet) -> Result<(), QueueDrop> {
        let (at, id) = (pkt.created_at, pkt.id);
        let r = self.queue.push(pkt);
        match &r {
            Ok(()) => {
                if let Some(t) = &self.telemetry {
                    t.enqueued.incr(0);
                    t.backlog_pkts.set(self.queue.len() as u64);
                }
            }
            Err(cause) => {
                if let Some(t) = &self.telemetry {
                    t.drops.incr(0);
                    match cause {
                        QueueDrop::OverPkts => t.drops_overpkts.incr(0),
                        QueueDrop::OverBytes => t.drops_overbytes.incr(0),
                        // A FIFO never produces the scheduler/TM causes.
                        _ => {}
                    }
                    t.ring.record(at, TraceKind::TailDrop, 0, id);
                }
            }
        }
        r
    }

    fn refill(&mut self, now: Nanos) {
        let dt = now.saturating_sub(self.last);
        if dt > Nanos::ZERO {
            self.last = now;
            self.tokens = (self.tokens + self.rate.bits_in(dt) as i64).min(self.burst_bits);
        }
    }

    /// Releases the head packet if tokens cover it.
    pub fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        self.refill(now);
        let bits = self.queue.peek()?.frame_bits() as i64;
        if self.tokens >= bits {
            self.tokens -= bits;
            let pkt = self.queue.pop();
            if let (Some(p), Some(t)) = (&pkt, &self.telemetry) {
                t.dequeued.incr(0);
                t.dequeued_bits.add(0, p.frame_bits());
                t.backlog_pkts.set(self.queue.len() as u64);
                // Queue span: how long the packet sat waiting for tokens.
                let sojourn = now.saturating_sub(p.created_at);
                t.spans.record(Stage::Queue, p.created_at, p.id, sojourn);
            }
            pkt
        } else {
            None
        }
    }

    /// When the head packet will conform, or `None` if the queue is empty.
    pub fn next_ready(&self, now: Nanos) -> Option<Nanos> {
        let bits = self.queue.peek()?.frame_bits() as i64;
        let deficit = bits - self.tokens;
        if deficit <= 0 {
            return Some(now);
        }
        Some(now + self.rate.serialization_time(deficit as u64))
    }

    /// Queued packets.
    pub fn backlog_pkts(&self) -> usize {
        self.queue.len()
    }

    /// Packets refused at enqueue.
    pub fn drops(&self) -> u64 {
        self.queue.drops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::flow::FlowKey;
    use netstack::packet::{AppId, VfPort};

    fn pkt(id: u64, len: u32) -> Packet {
        let flow = FlowKey::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
        Packet::new(id, flow, len, AppId(0), VfPort(0), Nanos::ZERO)
    }

    #[test]
    fn burst_releases_immediately_then_throttles() {
        // 1 Gbps, 2500 B burst: two 1250 B packets pass, the third waits.
        let mut tbf = Tbf::new(BitRate::from_gbps(1.0), 2_500, 1 << 20, 100);
        for i in 0..3 {
            tbf.enqueue(pkt(i, 1250)).unwrap();
        }
        assert!(tbf.dequeue(Nanos::ZERO).is_some());
        assert!(tbf.dequeue(Nanos::ZERO).is_some());
        assert!(tbf.dequeue(Nanos::ZERO).is_none());
        // 10_000 bits at 1 Gbps = 10 us until the third conforms.
        assert_eq!(tbf.next_ready(Nanos::ZERO), Some(Nanos::from_micros(10)));
        assert!(tbf.dequeue(Nanos::from_micros(10)).is_some());
    }

    #[test]
    fn long_run_rate_matches_configuration() {
        let rate = BitRate::from_gbps(2.0);
        let mut tbf = Tbf::new(rate, 5_000, 10 << 20, 10_000);
        let mut t = Nanos::ZERO;
        let mut sent_bits = 0u64;
        let horizon = Nanos::from_millis(5);
        let mut id = 0;
        while t < horizon {
            while tbf.backlog_pkts() < 100 {
                let _ = tbf.enqueue(pkt(id, 1250));
                id += 1;
            }
            match tbf.dequeue(t) {
                Some(p) => sent_bits += p.frame_bits(),
                None => t = tbf.next_ready(t).unwrap().max(t + Nanos::from_nanos(1)),
            }
        }
        let gbps = sent_bits as f64 / horizon.as_secs_f64() / 1e9;
        assert!((gbps - 2.0).abs() < 0.1, "rate {gbps}");
    }

    #[test]
    fn empty_queue_has_no_ready_time() {
        let tbf = Tbf::new(BitRate::from_mbps(10), 1_000, 1 << 20, 10);
        assert_eq!(tbf.next_ready(Nanos::ZERO), None);
    }

    #[test]
    fn queue_limits_drop() {
        let mut tbf = Tbf::new(BitRate::from_mbps(1), 1_000, 1 << 20, 1);
        tbf.enqueue(pkt(0, 1250)).unwrap();
        assert!(tbf.enqueue(pkt(1, 1250)).is_err());
        assert_eq!(tbf.drops(), 1);
        assert_eq!(tbf.backlog_pkts(), 1);
    }

    #[test]
    fn telemetry_mirrors_counters() {
        use fv_telemetry::Registry;

        let mut tbf = Tbf::new(BitRate::from_gbps(1.0), 10_000, 1 << 20, 1);
        let registry = Registry::new();
        tbf.attach_telemetry(&registry);
        tbf.enqueue(pkt(0, 1250)).unwrap();
        assert!(tbf.enqueue(pkt(1, 1250)).is_err());
        let out = tbf.dequeue(Nanos::ZERO).unwrap();
        let snap = registry.snapshot(Nanos::ZERO);
        assert_eq!(snap.counter("tbf.enqueued"), 1);
        assert_eq!(snap.counter("tbf.drops"), 1);
        assert_eq!(snap.counter("tbf.dequeued"), 1);
        assert_eq!(snap.counter("tbf.dequeued_bits"), out.frame_bits());
        assert!(snap
            .events
            .iter()
            .any(|e| e.kind == fv_telemetry::trace::TraceKind::TailDrop && e.b == 1));
        // The 1-packet limit refused packet 1: cause is OverPkts.
        assert_eq!(snap.counter("tbf.drops_overpkts"), 1);
        assert_eq!(snap.counter("tbf.drops_overbytes"), 0);
    }

    #[test]
    fn byte_limit_drops_are_attributed() {
        use fv_telemetry::Registry;

        // 2000-byte backlog: one 1250 B packet fits, the second overflows
        // the byte limit (packet limit is generous).
        let mut tbf = Tbf::new(BitRate::from_gbps(1.0), 10_000, 2_000, 100);
        let registry = Registry::new();
        tbf.attach_telemetry(&registry);
        tbf.enqueue(pkt(0, 1250)).unwrap();
        assert_eq!(tbf.enqueue(pkt(1, 1250)), Err(QueueDrop::OverBytes));
        let snap = registry.snapshot(Nanos::ZERO);
        assert_eq!(snap.counter("tbf.drops_overbytes"), 1);
        assert_eq!(snap.counter("tbf.drops_overpkts"), 0);
    }

    #[test]
    fn dequeue_stamps_queue_sojourn_spans() {
        use fv_telemetry::trace::TraceKind;
        use fv_telemetry::Registry;

        // Tiny burst: the packet must wait for tokens before release.
        let mut tbf = Tbf::new(BitRate::from_gbps(1.0), 1_250, 1 << 20, 10);
        let registry = Registry::new();
        tbf.attach_telemetry(&registry);
        tbf.enqueue(pkt(0, 1250)).unwrap(); // exactly one burst worth
        tbf.enqueue(pkt(1, 1250)).unwrap();
        assert!(tbf.dequeue(Nanos::ZERO).is_some());
        let ready = tbf.next_ready(Nanos::ZERO).unwrap();
        assert!(tbf.dequeue(ready).is_some());
        let snap = registry.snapshot(ready);
        let h = snap.histogram("span.queue_ns").expect("queue span hist");
        assert_eq!(h.count, 2);
        assert_eq!(h.max, ready.as_nanos()); // second packet waited 10 us
        assert!(registry
            .ring()
            .recent(8)
            .iter()
            .any(|e| e.kind == TraceKind::SpanQueue && e.a == 1 && e.b == ready.as_nanos()));
    }
}
