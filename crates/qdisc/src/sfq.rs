//! Stochastic Fairness Queueing (SFQ).
//!
//! The classic classless fair qdisc: flows hash into a fixed set of
//! buckets served round-robin with a byte quantum, and the hash is
//! perturbed periodically so colliding flows do not share fate forever.
//! Included as the software fair-queueing reference next to HTB and the
//! DPDK scheduler — per-flow fair without configuration, but with hash
//! collisions and no hierarchy or guarantees (which is why the paper's
//! policies need classful scheduling).

use std::sync::Arc;

use fv_audit::CauseCounters;
use fv_telemetry::metrics::Gauge;
use fv_telemetry::Registry;
use netstack::packet::Packet;
use sim_core::time::Nanos;

use crate::fifo::{PacketFifo, QueueDrop};

/// SFQ configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SfqConfig {
    /// Number of hash buckets (127 in the kernel's classic SFQ).
    pub buckets: usize,
    /// DRR quantum in bytes (one MTU by default).
    pub quantum: u32,
    /// Per-bucket packet limit.
    pub bucket_limit: usize,
    /// Hash perturbation period (0 = never, like `perturb 0`).
    pub perturb: Nanos,
}

impl Default for SfqConfig {
    fn default() -> Self {
        SfqConfig {
            buckets: 127,
            quantum: 1_518,
            bucket_limit: 127,
            perturb: Nanos::from_secs(10),
        }
    }
}

/// The SFQ qdisc.
///
/// # Example
///
/// ```
/// use netstack::flow::FlowKey;
/// use netstack::packet::{AppId, Packet, VfPort};
/// use qdisc::sfq::{Sfq, SfqConfig};
/// use sim_core::time::Nanos;
///
/// let mut sfq = Sfq::new(SfqConfig::default());
/// let flow = FlowKey::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
/// sfq.enqueue(Packet::new(0, flow, 1000, AppId(0), VfPort(0), Nanos::ZERO), Nanos::ZERO)?;
/// assert_eq!(sfq.dequeue(Nanos::ZERO).map(|p| p.id), Some(0));
/// # Ok::<(), qdisc::fifo::QueueDrop>(())
/// ```
#[derive(Debug)]
pub struct Sfq {
    cfg: SfqConfig,
    buckets: Vec<PacketFifo>,
    deficits: Vec<i64>,
    rr_cursor: usize,
    perturbation: u64,
    next_perturb: Nanos,
    enqueued: u64,
    dequeued: u64,
    backlog_gauge: Option<Arc<Gauge>>,
    /// Per-bucket drop-cause split (`sfq.bucket.<i>.drop.<cause>`); each
    /// cause's counter registers on the first drop it counts.
    cause_counters: Option<Vec<CauseCounters>>,
}

impl Sfq {
    /// Creates an SFQ instance.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero buckets or a zero quantum.
    pub fn new(cfg: SfqConfig) -> Self {
        assert!(cfg.buckets > 0, "need at least one bucket");
        assert!(cfg.quantum > 0, "quantum must be positive");
        Sfq {
            buckets: (0..cfg.buckets)
                .map(|_| PacketFifo::new(u64::MAX, cfg.bucket_limit))
                .collect(),
            deficits: vec![0; cfg.buckets],
            rr_cursor: 0,
            perturbation: 0x9E37_79B9,
            next_perturb: if cfg.perturb == Nanos::ZERO {
                Nanos::MAX
            } else {
                cfg.perturb
            },
            enqueued: 0,
            dequeued: 0,
            backlog_gauge: None,
            cause_counters: None,
            cfg,
        }
    }

    /// Mirrors the total backlog into a `sfq.backlog_pkts` gauge; its
    /// high-water mark is the waterline `fv profile` reports. Also arms
    /// the per-bucket drop-cause split (`sfq.bucket.<i>.drop.<cause>`),
    /// whose counters register lazily on first drop.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.backlog_gauge = Some(registry.gauge("sfq.backlog_pkts"));
        self.cause_counters = Some(
            (0..self.buckets.len())
                .map(|i| CauseCounters::new(registry, format!("sfq.bucket.{i}")))
                .collect(),
        );
    }

    fn bucket_of(&self, pkt: &Packet) -> usize {
        ((pkt.flow.stable_hash() ^ self.perturbation) % self.buckets.len() as u64) as usize
    }

    fn maybe_perturb(&mut self, now: Nanos) {
        if now >= self.next_perturb {
            // Splitmix-style step decorrelates successive perturbations.
            self.perturbation = self
                .perturbation
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0x1656_67B1);
            self.next_perturb = now + self.cfg.perturb;
        }
    }

    /// Enqueues a packet at time `now`.
    ///
    /// # Errors
    ///
    /// [`QueueDrop::OverPkts`] / [`QueueDrop::OverBytes`] if the flow's bucket is full.
    pub fn enqueue(&mut self, pkt: Packet, now: Nanos) -> Result<(), QueueDrop> {
        self.maybe_perturb(now);
        let b = self.bucket_of(&pkt);
        let r = self.buckets[b].push(pkt);
        match r {
            Ok(()) => {
                self.enqueued += 1;
                if let Some(g) = &self.backlog_gauge {
                    g.set(self.backlog_pkts() as u64);
                }
            }
            Err(cause) => {
                if let Some(cc) = &self.cause_counters {
                    cc[b].incr(cause, 0);
                }
            }
        }
        r
    }

    /// Dequeues the next packet per DRR over non-empty buckets.
    pub fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        self.maybe_perturb(now);
        let n = self.buckets.len();
        if self.backlog_pkts() == 0 {
            return None;
        }
        for pass in 0..2 {
            for k in 0..n {
                let i = (self.rr_cursor + k) % n;
                let Some(head_len) = self.buckets[i].peek().map(|p| p.frame_len as i64) else {
                    continue;
                };
                if self.deficits[i] >= head_len {
                    self.deficits[i] -= head_len;
                    self.rr_cursor = i;
                    self.dequeued += 1;
                    let p = self.buckets[i].pop();
                    if let Some(g) = &self.backlog_gauge {
                        g.set(self.backlog_pkts() as u64);
                    }
                    return p;
                }
                if pass == 0 {
                    self.deficits[i] += self.cfg.quantum as i64;
                }
            }
        }
        unreachable!("quantum covers at least one MTU");
    }

    /// Total queued packets.
    pub fn backlog_pkts(&self) -> usize {
        self.buckets.iter().map(PacketFifo::len).sum()
    }

    /// Packets accepted so far.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Packets dequeued so far.
    pub fn dequeued(&self) -> u64 {
        self.dequeued
    }

    /// Drops across all buckets.
    pub fn drops(&self) -> u64 {
        self.buckets.iter().map(PacketFifo::drops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::flow::FlowKey;
    use netstack::packet::{AppId, VfPort};

    fn pkt(id: u64, sport: u16) -> Packet {
        let flow = FlowKey::tcp([10, 0, 0, 1], sport, [10, 0, 0, 2], 80);
        Packet::new(id, flow, 1_000, AppId(0), VfPort(0), Nanos::ZERO)
    }

    #[test]
    fn single_flow_is_fifo() {
        let mut q = Sfq::new(SfqConfig::default());
        for i in 0..10 {
            q.enqueue(pkt(i, 1000), Nanos::ZERO).unwrap();
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.dequeue(Nanos::ZERO))
            .map(|p| p.id)
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn competing_flows_share_roughly_equally() {
        let mut q = Sfq::new(SfqConfig::default());
        // Two flows, one enqueues 3x the packets of the other; over a fixed
        // service budget, each gets a near-equal share while both are
        // backlogged.
        let mut id = 0;
        for _ in 0..200 {
            for _ in 0..3 {
                let _ = q.enqueue(pkt(id, 1111), Nanos::ZERO);
                id += 1;
            }
            let _ = q.enqueue(pkt(id, 2222), Nanos::ZERO);
            id += 1;
        }
        let mut counts = [0u64; 2];
        for _ in 0..100 {
            let p = q.dequeue(Nanos::ZERO).expect("backlogged");
            counts[if p.flow.src_port == 1111 { 0 } else { 1 }] += 1;
        }
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((0.6..1.7).contains(&ratio), "unfair: {counts:?}");
    }

    #[test]
    fn perturbation_changes_the_hash() {
        let cfg = SfqConfig {
            perturb: Nanos::from_millis(1),
            ..SfqConfig::default()
        };
        let mut q = Sfq::new(cfg);
        let p = pkt(0, 1234);
        let before = q.bucket_of(&p);
        q.maybe_perturb(Nanos::from_millis(2));
        // Not guaranteed to differ for *one* flow, but the perturbation
        // value itself must have changed.
        let after_perturbation = q.perturbation;
        assert_ne!(after_perturbation, 0x9E37_79B9);
        let _ = before;
    }

    #[test]
    fn bucket_limit_drops() {
        let cfg = SfqConfig {
            bucket_limit: 2,
            ..SfqConfig::default()
        };
        let mut q = Sfq::new(cfg);
        assert!(q.enqueue(pkt(0, 1), Nanos::ZERO).is_ok());
        assert!(q.enqueue(pkt(1, 1), Nanos::ZERO).is_ok());
        assert!(q.enqueue(pkt(2, 1), Nanos::ZERO).is_err());
        assert_eq!(q.drops(), 1);
        assert_eq!(q.enqueued(), 2);
    }

    #[test]
    fn bucket_drop_cause_counters_register_lazily() {
        let reg = Registry::new();
        let cfg = SfqConfig {
            bucket_limit: 2,
            ..SfqConfig::default()
        };
        let mut q = Sfq::new(cfg);
        q.attach_telemetry(&reg);
        let b = q.bucket_of(&pkt(0, 1));
        assert!(reg
            .snapshot(Nanos::ZERO)
            .get(&format!("sfq.bucket.{b}.drop.over_pkts"))
            .is_none());
        assert!(q.enqueue(pkt(0, 1), Nanos::ZERO).is_ok());
        assert!(q.enqueue(pkt(1, 1), Nanos::ZERO).is_ok());
        assert_eq!(q.enqueue(pkt(2, 1), Nanos::ZERO), Err(QueueDrop::OverPkts));
        let snap = reg.snapshot(Nanos::ZERO);
        assert_eq!(snap.counter(&format!("sfq.bucket.{b}.drop.over_pkts")), 1);
        assert!(snap
            .get(&format!("sfq.bucket.{b}.drop.over_bytes"))
            .is_none());
    }

    #[test]
    fn empty_dequeues_none() {
        let mut q = Sfq::new(SfqConfig::default());
        assert!(q.dequeue(Nanos::ZERO).is_none());
        assert_eq!(q.dequeued(), 0);
    }

    #[test]
    fn backlog_gauge_tracks_waterline() {
        let reg = Registry::new();
        let mut q = Sfq::new(SfqConfig::default());
        q.attach_telemetry(&reg);
        for i in 0..5 {
            q.enqueue(pkt(i, (i % 3) as u16 + 1), Nanos::ZERO).unwrap();
        }
        while q.dequeue(Nanos::ZERO).is_some() {}
        let g = reg.gauge("sfq.backlog_pkts");
        assert_eq!(g.get(), 0);
        assert_eq!(g.max(), 5);
    }

    #[test]
    fn conservation_over_random_flows() {
        let mut q = Sfq::new(SfqConfig::default());
        let mut accepted = 0u64;
        for i in 0..500u64 {
            if q.enqueue(pkt(i, (i % 37) as u16 + 1), Nanos::ZERO).is_ok() {
                accepted += 1;
            }
        }
        let mut got = 0u64;
        while q.dequeue(Nanos::ZERO).is_some() {
            got += 1;
        }
        assert_eq!(got, accepted);
        assert_eq!(q.backlog_pkts(), 0);
    }
}
