//! The PRIO qdisc: strict-priority bands.
//!
//! The classic classful priority scheduler FlowValve offloads (paper §I):
//! N FIFO bands, dequeue always serves the highest-priority (lowest-index)
//! non-empty band.

use netstack::packet::Packet;

use crate::fifo::{PacketFifo, QueueDrop};

/// A strict-priority qdisc with `N` bands.
///
/// # Example
///
/// ```
/// use netstack::flow::FlowKey;
/// use netstack::packet::{AppId, Packet, VfPort};
/// use qdisc::prio::Prio;
/// use sim_core::time::Nanos;
///
/// let mut prio = Prio::new(3, 1 << 20, 1_000);
/// let flow = FlowKey::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
/// let mk = |id| Packet::new(id, flow, 100, AppId(0), VfPort(0), Nanos::ZERO);
/// prio.enqueue(2, mk(0))?; // low priority first...
/// prio.enqueue(0, mk(1))?; // ...then high priority
/// assert_eq!(prio.dequeue().map(|p| p.id), Some(1)); // high pops first
/// # Ok::<(), qdisc::fifo::QueueDrop>(())
/// ```
#[derive(Debug)]
pub struct Prio {
    bands: Vec<PacketFifo>,
    enqueued: u64,
    dequeued: u64,
}

impl Prio {
    /// Creates a PRIO qdisc with `bands` bands, each bounded by the given
    /// byte and packet limits.
    ///
    /// # Panics
    ///
    /// Panics if `bands` is zero.
    pub fn new(bands: usize, byte_limit: u64, pkt_limit: usize) -> Self {
        assert!(bands > 0, "need at least one band");
        Prio {
            bands: (0..bands)
                .map(|_| PacketFifo::new(byte_limit, pkt_limit))
                .collect(),
            enqueued: 0,
            dequeued: 0,
        }
    }

    /// Number of bands.
    pub fn num_bands(&self) -> usize {
        self.bands.len()
    }

    /// Enqueues a packet into `band` (0 = highest priority).
    ///
    /// # Errors
    ///
    /// [`QueueDrop::Overlimit`] when the band is full.
    ///
    /// # Panics
    ///
    /// Panics if `band` is out of range.
    pub fn enqueue(&mut self, band: usize, pkt: Packet) -> Result<(), QueueDrop> {
        let r = self.bands[band].push(pkt);
        if r.is_ok() {
            self.enqueued += 1;
        }
        r
    }

    /// Dequeues from the highest-priority non-empty band.
    pub fn dequeue(&mut self) -> Option<Packet> {
        for band in &mut self.bands {
            if let Some(p) = band.pop() {
                self.dequeued += 1;
                return Some(p);
            }
        }
        None
    }

    /// Total queued packets.
    pub fn backlog_pkts(&self) -> usize {
        self.bands.iter().map(PacketFifo::len).sum()
    }

    /// Packets accepted so far.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Packets dequeued so far.
    pub fn dequeued(&self) -> u64 {
        self.dequeued
    }

    /// Drops across all bands.
    pub fn drops(&self) -> u64 {
        self.bands.iter().map(PacketFifo::drops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::flow::FlowKey;
    use netstack::packet::{AppId, VfPort};
    use sim_core::time::Nanos;

    fn pkt(id: u64) -> Packet {
        let flow = FlowKey::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
        Packet::new(id, flow, 100, AppId(0), VfPort(0), Nanos::ZERO)
    }

    #[test]
    fn strict_priority_order() {
        let mut q = Prio::new(3, 1 << 20, 100);
        q.enqueue(2, pkt(0)).unwrap();
        q.enqueue(1, pkt(1)).unwrap();
        q.enqueue(0, pkt(2)).unwrap();
        q.enqueue(0, pkt(3)).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue()).map(|p| p.id).collect();
        assert_eq!(order, vec![2, 3, 1, 0]);
    }

    #[test]
    fn starvation_is_total() {
        // As long as band 0 is backlogged, band 2 never dequeues.
        let mut q = Prio::new(3, 1 << 20, 100);
        q.enqueue(2, pkt(99)).unwrap();
        for i in 0..50 {
            q.enqueue(0, pkt(i)).unwrap();
        }
        for _ in 0..50 {
            assert_ne!(q.dequeue().unwrap().id, 99);
        }
        assert_eq!(q.dequeue().unwrap().id, 99);
    }

    #[test]
    fn per_band_limits() {
        let mut q = Prio::new(2, 1 << 20, 1);
        q.enqueue(0, pkt(0)).unwrap();
        assert!(q.enqueue(0, pkt(1)).is_err());
        // Other band unaffected.
        q.enqueue(1, pkt(2)).unwrap();
        assert_eq!(q.drops(), 1);
        assert_eq!(q.backlog_pkts(), 2);
        assert_eq!(q.enqueued(), 2);
    }

    #[test]
    fn empty_dequeues_none() {
        let mut q = Prio::new(2, 1 << 20, 10);
        assert!(q.dequeue().is_none());
        assert_eq!(q.dequeued(), 0);
        assert_eq!(q.num_bands(), 2);
    }

    #[test]
    #[should_panic]
    fn zero_bands_rejected() {
        let _ = Prio::new(0, 1, 1);
    }
}
