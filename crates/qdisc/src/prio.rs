//! The PRIO qdisc: strict-priority bands.
//!
//! The classic classful priority scheduler FlowValve offloads (paper §I):
//! N FIFO bands, dequeue always serves the highest-priority (lowest-index)
//! non-empty band.

use std::sync::Arc;

use fv_telemetry::metrics::{Counter, Gauge};
use fv_telemetry::span::{SpanRecorder, Stage};
use fv_telemetry::trace::{EventRing, TraceKind};
use fv_telemetry::Registry;
use netstack::packet::Packet;
use sim_core::time::Nanos;

use crate::fifo::{PacketFifo, QueueDrop};

/// A strict-priority qdisc with `N` bands.
///
/// # Example
///
/// ```
/// use netstack::flow::FlowKey;
/// use netstack::packet::{AppId, Packet, VfPort};
/// use qdisc::prio::Prio;
/// use sim_core::time::Nanos;
///
/// let mut prio = Prio::new(3, 1 << 20, 1_000);
/// let flow = FlowKey::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
/// let mk = |id| Packet::new(id, flow, 100, AppId(0), VfPort(0), Nanos::ZERO);
/// prio.enqueue(2, mk(0))?; // low priority first...
/// prio.enqueue(0, mk(1))?; // ...then high priority
/// assert_eq!(prio.dequeue().map(|p| p.id), Some(1)); // high pops first
/// # Ok::<(), qdisc::fifo::QueueDrop>(())
/// ```
/// Registry handles mirroring the PRIO counters. Attached via
/// [`Prio::attach_telemetry`].
#[derive(Debug, Clone)]
struct PrioTelemetry {
    enqueued: Arc<Counter>,
    dequeued: Arc<Counter>,
    drops: Arc<Counter>,
    drops_overpkts: Arc<Counter>,
    drops_overbytes: Arc<Counter>,
    band_drops: Vec<Arc<Counter>>,
    backlog_pkts: Arc<Gauge>,
    ring: Arc<EventRing>,
    spans: SpanRecorder,
}

#[derive(Debug)]
pub struct Prio {
    bands: Vec<PacketFifo>,
    enqueued: u64,
    dequeued: u64,
    telemetry: Option<PrioTelemetry>,
}

impl Prio {
    /// Creates a PRIO qdisc with `bands` bands, each bounded by the given
    /// byte and packet limits.
    ///
    /// # Panics
    ///
    /// Panics if `bands` is zero.
    pub fn new(bands: usize, byte_limit: u64, pkt_limit: usize) -> Self {
        assert!(bands > 0, "need at least one band");
        Prio {
            bands: (0..bands)
                .map(|_| PacketFifo::new(byte_limit, pkt_limit))
                .collect(),
            enqueued: 0,
            dequeued: 0,
            telemetry: None,
        }
    }

    /// Mirrors this qdisc's counters into `registry` under `prio.*` —
    /// band overflows additionally trace [`TraceKind::TailDrop`] events.
    /// Drops are broken out by cause (`prio.drops_overpkts` /
    /// `prio.drops_overbytes`) and by band (`prio.band<i>.drops`)
    /// alongside the aggregate `prio.drops`.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = Some(PrioTelemetry {
            enqueued: registry.counter("prio.enqueued"),
            dequeued: registry.counter("prio.dequeued"),
            drops: registry.counter("prio.drops"),
            drops_overpkts: registry.counter("prio.drops_overpkts"),
            drops_overbytes: registry.counter("prio.drops_overbytes"),
            band_drops: (0..self.bands.len())
                .map(|i| registry.counter(&format!("prio.band{i}.drops")))
                .collect(),
            backlog_pkts: registry.gauge("prio.backlog_pkts"),
            ring: registry.ring(),
            spans: SpanRecorder::new(registry),
        });
    }

    /// Number of bands.
    pub fn num_bands(&self) -> usize {
        self.bands.len()
    }

    /// Enqueues a packet into `band` (0 = highest priority).
    ///
    /// # Errors
    ///
    /// [`QueueDrop::OverPkts`] / [`QueueDrop::OverBytes`] when the band
    /// is full, naming which limit refused the packet.
    ///
    /// # Panics
    ///
    /// Panics if `band` is out of range.
    pub fn enqueue(&mut self, band: usize, pkt: Packet) -> Result<(), QueueDrop> {
        let (at, id) = (pkt.created_at, pkt.id);
        let r = self.bands[band].push(pkt);
        match &r {
            Ok(()) => {
                self.enqueued += 1;
                if let Some(t) = &self.telemetry {
                    t.enqueued.incr(0);
                    t.backlog_pkts.set(self.backlog_pkts() as u64);
                }
            }
            Err(cause) => {
                if let Some(t) = &self.telemetry {
                    t.drops.incr(0);
                    match cause {
                        QueueDrop::OverPkts => t.drops_overpkts.incr(0),
                        QueueDrop::OverBytes => t.drops_overbytes.incr(0),
                        // A FIFO never produces the scheduler/TM causes.
                        _ => {}
                    }
                    t.band_drops[band].incr(0);
                    t.ring.record(at, TraceKind::TailDrop, band as u64, id);
                }
            }
        }
        r
    }

    /// Dequeues from the highest-priority non-empty band.
    pub fn dequeue(&mut self) -> Option<Packet> {
        self.dequeue_inner(None)
    }

    /// [`Prio::dequeue`] with the dequeue instant threaded through, so the
    /// packet's queue sojourn (`now - created_at`) is stamped as a `queue`
    /// stage span when telemetry is attached.
    pub fn dequeue_at(&mut self, now: Nanos) -> Option<Packet> {
        self.dequeue_inner(Some(now))
    }

    fn dequeue_inner(&mut self, now: Option<Nanos>) -> Option<Packet> {
        for band in 0..self.bands.len() {
            if let Some(p) = self.bands[band].pop() {
                self.dequeued += 1;
                if let Some(t) = &self.telemetry {
                    t.dequeued.incr(0);
                    t.backlog_pkts.set(self.backlog_pkts() as u64);
                    if let Some(now) = now {
                        let sojourn = now.saturating_sub(p.created_at);
                        t.spans.record(Stage::Queue, p.created_at, p.id, sojourn);
                    }
                }
                return Some(p);
            }
        }
        None
    }

    /// Total queued packets.
    pub fn backlog_pkts(&self) -> usize {
        self.bands.iter().map(PacketFifo::len).sum()
    }

    /// Packets accepted so far.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Packets dequeued so far.
    pub fn dequeued(&self) -> u64 {
        self.dequeued
    }

    /// Drops across all bands.
    pub fn drops(&self) -> u64 {
        self.bands.iter().map(PacketFifo::drops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::flow::FlowKey;
    use netstack::packet::{AppId, VfPort};
    use sim_core::time::Nanos;

    fn pkt(id: u64) -> Packet {
        let flow = FlowKey::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
        Packet::new(id, flow, 100, AppId(0), VfPort(0), Nanos::ZERO)
    }

    #[test]
    fn strict_priority_order() {
        let mut q = Prio::new(3, 1 << 20, 100);
        q.enqueue(2, pkt(0)).unwrap();
        q.enqueue(1, pkt(1)).unwrap();
        q.enqueue(0, pkt(2)).unwrap();
        q.enqueue(0, pkt(3)).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue()).map(|p| p.id).collect();
        assert_eq!(order, vec![2, 3, 1, 0]);
    }

    #[test]
    fn starvation_is_total() {
        // As long as band 0 is backlogged, band 2 never dequeues.
        let mut q = Prio::new(3, 1 << 20, 100);
        q.enqueue(2, pkt(99)).unwrap();
        for i in 0..50 {
            q.enqueue(0, pkt(i)).unwrap();
        }
        for _ in 0..50 {
            assert_ne!(q.dequeue().unwrap().id, 99);
        }
        assert_eq!(q.dequeue().unwrap().id, 99);
    }

    #[test]
    fn per_band_limits() {
        let mut q = Prio::new(2, 1 << 20, 1);
        q.enqueue(0, pkt(0)).unwrap();
        assert!(q.enqueue(0, pkt(1)).is_err());
        // Other band unaffected.
        q.enqueue(1, pkt(2)).unwrap();
        assert_eq!(q.drops(), 1);
        assert_eq!(q.backlog_pkts(), 2);
        assert_eq!(q.enqueued(), 2);
    }

    #[test]
    fn empty_dequeues_none() {
        let mut q = Prio::new(2, 1 << 20, 10);
        assert!(q.dequeue().is_none());
        assert_eq!(q.dequeued(), 0);
        assert_eq!(q.num_bands(), 2);
    }

    #[test]
    #[should_panic]
    fn zero_bands_rejected() {
        let _ = Prio::new(0, 1, 1);
    }

    #[test]
    fn telemetry_mirrors_counters() {
        let mut q = Prio::new(2, 1 << 20, 1);
        let registry = Registry::new();
        q.attach_telemetry(&registry);
        q.enqueue(0, pkt(0)).unwrap();
        assert!(q.enqueue(0, pkt(1)).is_err());
        q.enqueue(1, pkt(2)).unwrap();
        assert!(q.dequeue().is_some());
        let snap = registry.snapshot(Nanos::ZERO);
        assert_eq!(snap.counter("prio.enqueued"), 2);
        assert_eq!(snap.counter("prio.drops"), 1);
        assert_eq!(snap.counter("prio.dequeued"), 1);
        assert!(snap
            .events
            .iter()
            .any(|e| e.kind == TraceKind::TailDrop && e.a == 0 && e.b == 1));
    }

    #[test]
    fn drops_are_attributed_by_cause_and_band() {
        fn sized(id: u64, len: u32) -> Packet {
            let flow = FlowKey::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
            Packet::new(id, flow, len, AppId(0), VfPort(0), Nanos::ZERO)
        }
        // Shared limits: 250 bytes, 2 packets per band. Band 0 fills the
        // packet slots with small frames → OverPkts; band 1 blows the byte
        // budget with one large frame → OverBytes.
        let mut q = Prio::new(2, 250, 2);
        let registry = Registry::new();
        q.attach_telemetry(&registry);
        q.enqueue(0, sized(0, 64)).unwrap();
        q.enqueue(0, sized(1, 64)).unwrap();
        assert_eq!(q.enqueue(0, sized(2, 64)), Err(QueueDrop::OverPkts));
        q.enqueue(1, sized(3, 200)).unwrap();
        assert_eq!(q.enqueue(1, sized(4, 100)), Err(QueueDrop::OverBytes));
        let snap = registry.snapshot(Nanos::ZERO);
        assert_eq!(snap.counter("prio.drops"), 2);
        assert_eq!(snap.counter("prio.drops_overpkts"), 1);
        assert_eq!(snap.counter("prio.drops_overbytes"), 1);
        assert_eq!(snap.counter("prio.band0.drops"), 1);
        assert_eq!(snap.counter("prio.band1.drops"), 1);
    }

    #[test]
    fn dequeue_at_stamps_queue_sojourn_spans() {
        let mut q = Prio::new(2, 1 << 20, 10);
        let registry = Registry::new();
        q.attach_telemetry(&registry);
        q.enqueue(0, pkt(5)).unwrap(); // created_at = 0
        let now = Nanos::from_micros(3);
        assert_eq!(q.dequeue_at(now).map(|p| p.id), Some(5));
        let snap = registry.snapshot(now);
        let h = snap.histogram("span.queue_ns").expect("queue span hist");
        assert_eq!(h.count, 1);
        assert_eq!(h.min, now.as_nanos());
        assert!(registry
            .ring()
            .recent(8)
            .iter()
            .any(|e| e.kind == TraceKind::SpanQueue && e.a == 5 && e.b == now.as_nanos()));
    }
}
