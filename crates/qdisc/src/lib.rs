//! Baseline software schedulers for the FlowValve reproduction.
//!
//! The paper evaluates FlowValve against two widely deployed software
//! schedulers; this crate models both, plus the building blocks they share:
//!
//! * [`htb`] — a kernel-style Hierarchy Token Bucket with the measured
//!   CentOS 7 behaviours behind explicit knobs (GSO undercharging that
//!   overruns ceilings, quantum-only borrowing that ignores leaf priority,
//!   coarse watchdog timers). These are the artifacts of the paper's
//!   Figure 3.
//! * [`prio`] — strict-priority bands (the kernel PRIO qdisc).
//! * [`sfq`] — Stochastic Fairness Queueing, the classless fair reference.
//! * [`tbf`] — a token-bucket *shaper*, the buffering reference FlowValve's
//!   early-drop emulates.
//! * [`dpdk`] — a DPDK QoS Scheduler model (subport → pipe → strict-prio
//!   traffic classes) with exact conformance.
//! * [`costmodel`] — the CPU cost side of Figure 13: cores-per-Mpps for
//!   DPDK and the kernel qdisc lock.
//! * [`fifo`] — the byte/packet-bounded FIFO underlying all of the above.

pub mod costmodel;
pub mod dpdk;
pub mod fifo;
pub mod htb;
pub mod prio;
pub mod sfq;
pub mod tbf;

pub use costmodel::{DpdkCpuModel, KernelCpuModel};
pub use dpdk::{DpdkQos, DpdkQosConfig, PipeConfig};
pub use fifo::{PacketFifo, QueueDrop};
pub use htb::{Handle, Htb, HtbClassSpec, HtbError, KernelModel};
pub use prio::Prio;
pub use sfq::{Sfq, SfqConfig};
pub use tbf::Tbf;
