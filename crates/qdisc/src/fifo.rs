//! A byte-bounded packet FIFO: the building block of every software qdisc.

use std::collections::VecDeque;

use netstack::packet::Packet;

pub use fv_audit::DropCause;

/// Why an enqueue was refused. Since the drop-cause unification this is
/// the shared [`fv_audit::DropCause`]; software qdiscs only ever produce
/// the [`DropCause::OverPkts`] / [`DropCause::OverBytes`] variants.
pub type QueueDrop = DropCause;

/// A FIFO with byte and packet limits.
///
/// # Example
///
/// ```
/// use netstack::flow::FlowKey;
/// use netstack::packet::{AppId, Packet, VfPort};
/// use qdisc::fifo::PacketFifo;
/// use sim_core::time::Nanos;
///
/// let mut q = PacketFifo::new(10_000, 100);
/// let flow = FlowKey::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
/// let pkt = Packet::new(0, flow, 1500, AppId(0), VfPort(0), Nanos::ZERO);
/// q.push(pkt)?;
/// assert_eq!(q.len(), 1);
/// assert_eq!(q.pop().map(|p| p.id), Some(0));
/// # Ok::<(), qdisc::fifo::QueueDrop>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct PacketFifo {
    queue: VecDeque<Packet>,
    bytes: u64,
    byte_limit: u64,
    pkt_limit: usize,
    drops: u64,
}

impl PacketFifo {
    /// Creates a FIFO bounded by bytes and packet count.
    pub fn new(byte_limit: u64, pkt_limit: usize) -> Self {
        PacketFifo {
            queue: VecDeque::new(),
            bytes: 0,
            byte_limit,
            pkt_limit,
            drops: 0,
        }
    }

    /// Appends a packet.
    ///
    /// # Errors
    ///
    /// [`QueueDrop::OverPkts`] when the packet-count limit is reached,
    /// [`QueueDrop::OverBytes`] when the byte limit would be exceeded
    /// (packet limit checked first).
    pub fn push(&mut self, pkt: Packet) -> Result<(), QueueDrop> {
        if self.queue.len() >= self.pkt_limit {
            self.drops += 1;
            return Err(QueueDrop::OverPkts);
        }
        if self.bytes + pkt.frame_len as u64 > self.byte_limit {
            self.drops += 1;
            return Err(QueueDrop::OverBytes);
        }
        self.bytes += pkt.frame_len as u64;
        self.queue.push_back(pkt);
        Ok(())
    }

    /// Removes the head packet.
    pub fn pop(&mut self) -> Option<Packet> {
        let pkt = self.queue.pop_front()?;
        self.bytes -= pkt.frame_len as u64;
        Some(pkt)
    }

    /// The head packet without removing it.
    pub fn peek(&self) -> Option<&Packet> {
        self.queue.front()
    }

    /// Queued packet count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Queued bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Packets refused so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::flow::FlowKey;
    use netstack::packet::{AppId, VfPort};
    use sim_core::time::Nanos;

    fn pkt(id: u64, len: u32) -> Packet {
        let flow = FlowKey::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
        Packet::new(id, flow, len, AppId(0), VfPort(0), Nanos::ZERO)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = PacketFifo::new(1 << 20, 1024);
        for i in 0..5 {
            q.push(pkt(i, 100)).unwrap();
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|p| p.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn byte_limit_enforced() {
        let mut q = PacketFifo::new(250, 1024);
        q.push(pkt(0, 100)).unwrap();
        q.push(pkt(1, 100)).unwrap();
        assert_eq!(q.push(pkt(2, 100)), Err(QueueDrop::OverBytes));
        assert_eq!(q.drops(), 1);
        assert_eq!(q.bytes(), 200);
    }

    #[test]
    fn pkt_limit_enforced() {
        let mut q = PacketFifo::new(1 << 20, 2);
        q.push(pkt(0, 64)).unwrap();
        q.push(pkt(1, 64)).unwrap();
        assert_eq!(q.push(pkt(2, 64)), Err(QueueDrop::OverPkts));
        // Popping frees a slot.
        q.pop();
        assert!(q.push(pkt(3, 64)).is_ok());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = PacketFifo::new(1 << 20, 8);
        q.push(pkt(7, 64)).unwrap();
        assert_eq!(q.peek().map(|p| p.id), Some(7));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn bytes_track_pop() {
        let mut q = PacketFifo::new(1 << 20, 8);
        q.push(pkt(0, 100)).unwrap();
        q.push(pkt(1, 200)).unwrap();
        q.pop();
        assert_eq!(q.bytes(), 200);
    }
}
