//! A DPDK QoS Scheduler model (`librte_sched`-style hierarchy).
//!
//! The paper's second baseline. The real block arranges
//! port → subport → pipe → traffic class (strict priority) → queue (WRR);
//! this model implements the port/subport/pipe/TC levels with exact token
//! accounting — DPDK *does* enforce policy accurately (paper §II-A); what
//! it costs is CPU, which [`crate::costmodel`] accounts separately.

use std::sync::Arc;

use fv_telemetry::metrics::{Counter, Gauge};
use fv_telemetry::trace::{EventRing, TraceKind};
use fv_telemetry::Registry;
use netstack::packet::Packet;
use sim_core::time::Nanos;
use sim_core::units::BitRate;

use crate::fifo::{PacketFifo, QueueDrop};

/// Number of strict-priority traffic classes per pipe (as in `librte_sched`).
pub const NUM_TCS: usize = 4;

#[derive(Debug, Clone)]
struct TokenState {
    rate: BitRate,
    burst_bits: i64,
    tokens: i64,
    last: Nanos,
}

impl TokenState {
    fn new(rate: BitRate, burst_window: Nanos) -> Self {
        let burst_bits = (rate.bits_in(burst_window) as i64).max(4 * 1518 * 8);
        TokenState {
            rate,
            burst_bits,
            tokens: burst_bits,
            last: Nanos::ZERO,
        }
    }

    fn refill(&mut self, now: Nanos) {
        let dt = now.saturating_sub(self.last);
        if dt > Nanos::ZERO {
            self.last = now;
            self.tokens = (self.tokens + self.rate.bits_in(dt) as i64).min(self.burst_bits);
        }
    }

    fn covers(&self, bits: i64) -> bool {
        self.tokens >= bits
    }

    fn charge(&mut self, bits: i64) {
        self.tokens -= bits;
    }
}

/// Configuration of one pipe (tenant).
#[derive(Debug, Clone, PartialEq)]
pub struct PipeConfig {
    /// Pipe aggregate rate.
    pub rate: BitRate,
    /// Per-traffic-class rates (strict priority TC0 > TC1 > ...).
    pub tc_rates: [BitRate; NUM_TCS],
}

impl PipeConfig {
    /// A pipe whose TCs all share the full pipe rate.
    pub fn flat(rate: BitRate) -> Self {
        PipeConfig {
            rate,
            tc_rates: [rate; NUM_TCS],
        }
    }
}

/// Configuration of the scheduler block.
#[derive(Debug, Clone, PartialEq)]
pub struct DpdkQosConfig {
    /// Subport (aggregate) rate.
    pub subport_rate: BitRate,
    /// Pipes under the subport.
    pub pipes: Vec<PipeConfig>,
    /// Token-bucket burst window.
    pub burst_window: Nanos,
    /// Per-queue byte limit.
    pub queue_bytes: u64,
    /// Per-queue packet limit (64 in stock DPDK; larger here because the
    /// simulation has no mempool pressure).
    pub queue_pkts: usize,
}

impl DpdkQosConfig {
    /// A subport with `n` equal flat pipes.
    pub fn equal_pipes(subport_rate: BitRate, n: usize) -> Self {
        DpdkQosConfig {
            subport_rate,
            pipes: (0..n)
                .map(|_| PipeConfig::flat(subport_rate.scaled(1, n as u64)))
                .collect(),
            burst_window: Nanos::from_micros(500),
            queue_bytes: 1 << 20,
            queue_pkts: 512,
        }
    }
}

struct PipeState {
    tb: TokenState,
    tcs: [TokenState; NUM_TCS],
    queues: [PacketFifo; NUM_TCS],
}

/// Aggregate counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpdkStats {
    /// Packets accepted.
    pub enqueued: u64,
    /// Enqueue-side drops.
    pub drops: u64,
    /// Packets dequeued.
    pub dequeued: u64,
    /// Bits dequeued.
    pub dequeued_bits: u64,
}

/// The hierarchical scheduler.
///
/// # Example
///
/// ```
/// use netstack::flow::FlowKey;
/// use netstack::packet::{AppId, Packet, VfPort};
/// use qdisc::dpdk::{DpdkQos, DpdkQosConfig};
/// use sim_core::time::Nanos;
/// use sim_core::units::BitRate;
///
/// let mut sched = DpdkQos::new(DpdkQosConfig::equal_pipes(BitRate::from_gbps(10.0), 2));
/// let flow = FlowKey::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
/// let pkt = Packet::new(0, flow, 1250, AppId(0), VfPort(0), Nanos::ZERO);
/// sched.enqueue(0, 0, pkt)?;
/// assert!(sched.dequeue(Nanos::ZERO).is_some());
/// # Ok::<(), qdisc::fifo::QueueDrop>(())
/// ```
/// Registry handles mirroring [`DpdkStats`]. Attached via
/// [`DpdkQos::attach_telemetry`].
#[derive(Debug, Clone)]
struct DpdkTelemetry {
    enqueued: Arc<Counter>,
    drops: Arc<Counter>,
    dequeued: Arc<Counter>,
    dequeued_bits: Arc<Counter>,
    backlog_pkts: Arc<Gauge>,
    ring: Arc<EventRing>,
}

pub struct DpdkQos {
    subport: TokenState,
    pipes: Vec<PipeState>,
    grinder: usize,
    stats: DpdkStats,
    telemetry: Option<DpdkTelemetry>,
}

impl core::fmt::Debug for DpdkQos {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DpdkQos")
            .field("pipes", &self.pipes.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl DpdkQos {
    /// Builds the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no pipes.
    pub fn new(cfg: DpdkQosConfig) -> Self {
        assert!(!cfg.pipes.is_empty(), "need at least one pipe");
        DpdkQos {
            subport: TokenState::new(cfg.subport_rate, cfg.burst_window),
            pipes: cfg
                .pipes
                .iter()
                .map(|p| PipeState {
                    tb: TokenState::new(p.rate, cfg.burst_window),
                    tcs: core::array::from_fn(|i| TokenState::new(p.tc_rates[i], cfg.burst_window)),
                    queues: core::array::from_fn(|_| {
                        PacketFifo::new(cfg.queue_bytes, cfg.queue_pkts)
                    }),
                })
                .collect(),
            grinder: 0,
            stats: DpdkStats::default(),
            telemetry: None,
        }
    }

    /// Mirrors this scheduler's counters into `registry` under `dpdk.*` —
    /// enqueue drops additionally trace [`TraceKind::TailDrop`] events
    /// whose `a` operand encodes `pipe * NUM_TCS + tc`.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = Some(DpdkTelemetry {
            enqueued: registry.counter("dpdk.enqueued"),
            drops: registry.counter("dpdk.drops"),
            dequeued: registry.counter("dpdk.dequeued"),
            dequeued_bits: registry.counter("dpdk.dequeued_bits"),
            backlog_pkts: registry.gauge("dpdk.backlog_pkts"),
            ring: registry.ring(),
        });
    }

    /// Number of pipes.
    pub fn num_pipes(&self) -> usize {
        self.pipes.len()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> DpdkStats {
        self.stats
    }

    /// Total backlog across all queues.
    pub fn backlog_pkts(&self) -> usize {
        self.pipes
            .iter()
            .flat_map(|p| p.queues.iter())
            .map(PacketFifo::len)
            .sum()
    }

    /// Enqueues into `(pipe, tc)`.
    ///
    /// # Errors
    ///
    /// [`QueueDrop::OverPkts`] / [`QueueDrop::OverBytes`] when the target queue is full.
    ///
    /// # Panics
    ///
    /// Panics if `pipe` or `tc` is out of range.
    pub fn enqueue(&mut self, pipe: usize, tc: usize, pkt: Packet) -> Result<(), QueueDrop> {
        let (at, id) = (pkt.created_at, pkt.id);
        let r = self.pipes[pipe].queues[tc].push(pkt);
        match r {
            Ok(()) => {
                self.stats.enqueued += 1;
                if let Some(t) = &self.telemetry {
                    t.enqueued.incr(0);
                    t.backlog_pkts.set(self.backlog_pkts() as u64);
                }
            }
            Err(_) => {
                self.stats.drops += 1;
                if let Some(t) = &self.telemetry {
                    t.drops.incr(0);
                    t.ring
                        .record(at, TraceKind::TailDrop, (pipe * NUM_TCS + tc) as u64, id);
                }
            }
        }
        r
    }

    /// Dequeues the next conforming packet: the grinder rotates over pipes;
    /// within a pipe, traffic classes are strict priority.
    pub fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        self.subport.refill(now);
        let n = self.pipes.len();
        for k in 0..n {
            let pi = (self.grinder + k) % n;
            let pipe = &mut self.pipes[pi];
            pipe.tb.refill(now);
            for tc in 0..NUM_TCS {
                pipe.tcs[tc].refill(now);
                let Some(head) = pipe.queues[tc].peek() else {
                    continue;
                };
                let bits = head.frame_bits() as i64;
                if self.subport.covers(bits) && pipe.tb.covers(bits) && pipe.tcs[tc].covers(bits) {
                    self.subport.charge(bits);
                    pipe.tb.charge(bits);
                    pipe.tcs[tc].charge(bits);
                    let pkt = pipe.queues[tc].pop().expect("peeked head exists");
                    self.stats.dequeued += 1;
                    self.stats.dequeued_bits += pkt.frame_bits();
                    if let Some(t) = &self.telemetry {
                        t.dequeued.incr(0);
                        t.dequeued_bits.add(0, pkt.frame_bits());
                        t.backlog_pkts.set(self.backlog_pkts() as u64);
                    }
                    // Move the grinder past this pipe for round-robin fairness.
                    self.grinder = (pi + 1) % n;
                    return Some(pkt);
                }
            }
        }
        None
    }

    /// When to poll again after a throttled dequeue (`None` when idle).
    pub fn next_ready(&self, now: Nanos) -> Option<Nanos> {
        if self.backlog_pkts() == 0 {
            None
        } else {
            // librte_sched re-evaluates every tc_period; 20 us keeps the
            // model's conformance tight.
            Some(now + Nanos::from_micros(20))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::flow::FlowKey;
    use netstack::packet::{AppId, VfPort};
    use std::collections::HashMap;

    fn pkt(id: u64, app: u16) -> Packet {
        let flow = FlowKey::tcp([10, 0, 0, 1], 1000 + app, [10, 0, 0, 2], 5001);
        Packet::new(id, flow, 1518, AppId(app), VfPort(0), Nanos::ZERO)
    }

    /// Greedy drain with per-pipe feeders.
    fn drain(q: &mut DpdkQos, link: BitRate, horizon: Nanos, pipes: &[usize]) -> HashMap<u16, u64> {
        let mut out = HashMap::new();
        let mut t = Nanos::ZERO;
        let mut id = 0;
        while t < horizon {
            for &p in pipes {
                while q.pipes[p].queues[0].len() < 64 {
                    let _ = q.enqueue(p, 0, pkt(id, p as u16));
                    id += 1;
                }
            }
            match q.dequeue(t) {
                Some(p) => {
                    *out.entry(p.app.0).or_default() += p.frame_bits();
                    t += link.serialization_time(p.frame_bits());
                }
                None => match q.next_ready(t) {
                    Some(n) => t = n,
                    None => break,
                },
            }
        }
        out
    }

    #[test]
    fn subport_rate_enforced_exactly() {
        let mut q = DpdkQos::new(DpdkQosConfig::equal_pipes(BitRate::from_gbps(10.0), 2));
        let horizon = Nanos::from_millis(10);
        let out = drain(&mut q, BitRate::from_gbps(40.0), horizon, &[0, 1]);
        let total = out.values().sum::<u64>() as f64 / horizon.as_secs_f64() / 1e9;
        // DPDK conformance is accurate: ~10 Gbps, never 12.
        assert!((total - 10.0).abs() < 0.5, "total {total} Gbps");
    }

    #[test]
    fn pipes_share_fairly() {
        let mut q = DpdkQos::new(DpdkQosConfig::equal_pipes(BitRate::from_gbps(10.0), 4));
        let horizon = Nanos::from_millis(10);
        let out = drain(&mut q, BitRate::from_gbps(40.0), horizon, &[0, 1, 2, 3]);
        let total: u64 = out.values().sum();
        for (&app, &bits) in &out {
            let share = bits as f64 / total as f64;
            assert!((share - 0.25).abs() < 0.05, "pipe {app} share {share}");
        }
    }

    #[test]
    fn tc_priority_within_pipe() {
        let mut q = DpdkQos::new(DpdkQosConfig::equal_pipes(BitRate::from_mbps(100), 1));
        // Fill TC3 first, then TC0: TC0 dequeues first.
        q.enqueue(0, 3, pkt(0, 3)).unwrap();
        q.enqueue(0, 0, pkt(1, 0)).unwrap();
        let first = q.dequeue(Nanos::ZERO).unwrap();
        assert_eq!(first.app.0, 0);
    }

    #[test]
    fn unused_pipe_capacity_is_not_work_conserved() {
        // Classic librte_sched property: pipe rate limits are hard; with
        // one active pipe of two, the subport only carries that pipe's 5 Gbps.
        let mut q = DpdkQos::new(DpdkQosConfig::equal_pipes(BitRate::from_gbps(10.0), 2));
        let horizon = Nanos::from_millis(10);
        let out = drain(&mut q, BitRate::from_gbps(40.0), horizon, &[0]);
        let total = out.values().sum::<u64>() as f64 / horizon.as_secs_f64() / 1e9;
        assert!((total - 5.0).abs() < 0.4, "total {total} Gbps");
    }

    #[test]
    fn queue_limits_drop_and_stats_track() {
        let mut cfg = DpdkQosConfig::equal_pipes(BitRate::from_mbps(10), 1);
        cfg.queue_pkts = 1;
        let mut q = DpdkQos::new(cfg);
        q.enqueue(0, 0, pkt(0, 0)).unwrap();
        assert!(q.enqueue(0, 0, pkt(1, 0)).is_err());
        let s = q.stats();
        assert_eq!((s.enqueued, s.drops), (1, 1));
        assert_eq!(q.backlog_pkts(), 1);
        assert_eq!(q.num_pipes(), 1);
    }

    #[test]
    fn idle_scheduler_has_no_timer() {
        let q = DpdkQos::new(DpdkQosConfig::equal_pipes(BitRate::from_mbps(10), 1));
        assert_eq!(q.next_ready(Nanos::ZERO), None);
    }

    #[test]
    fn telemetry_mirrors_stats() {
        let mut cfg = DpdkQosConfig::equal_pipes(BitRate::from_gbps(1.0), 2);
        cfg.queue_pkts = 1;
        let mut q = DpdkQos::new(cfg);
        let registry = Registry::new();
        q.attach_telemetry(&registry);
        q.enqueue(0, 0, pkt(0, 0)).unwrap();
        assert!(q.enqueue(0, 0, pkt(1, 0)).is_err());
        q.enqueue(1, 2, pkt(2, 1)).unwrap();
        assert!(q.enqueue(1, 2, pkt(3, 1)).is_err());
        let out = q.dequeue(Nanos::ZERO).unwrap();
        let snap = registry.snapshot(Nanos::ZERO);
        let s = q.stats();
        assert_eq!(snap.counter("dpdk.enqueued"), s.enqueued);
        assert_eq!(snap.counter("dpdk.drops"), s.drops);
        assert_eq!(snap.counter("dpdk.dequeued"), 1);
        assert_eq!(snap.counter("dpdk.dequeued_bits"), out.frame_bits());
        // The drop on (pipe 1, tc 2) encodes its queue index in `a`.
        assert!(snap
            .events
            .iter()
            .any(|e| e.kind == TraceKind::TailDrop && e.a == (NUM_TCS + 2) as u64));
    }
}
