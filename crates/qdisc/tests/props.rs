//! Randomized invariants of the baseline schedulers.
//!
//! Formerly `proptest` strategies; now deterministic [`SimRng`]-driven case
//! sweeps, since the workspace builds without crates.io access.

use netstack::flow::FlowKey;
use netstack::packet::{AppId, Packet, VfPort};
use qdisc::dpdk::{DpdkQos, DpdkQosConfig};
use qdisc::htb::{Handle, Htb, HtbClassSpec, KernelModel};
use qdisc::prio::Prio;
use qdisc::tbf::Tbf;
use sim_core::rng::SimRng;
use sim_core::time::Nanos;
use sim_core::units::BitRate;

fn pkt(id: u64, len: u32, app: u16) -> Packet {
    let flow = FlowKey::tcp([10, 0, 0, 1], 1000 + app, [10, 0, 0, 2], 80);
    Packet::new(id, flow, len, AppId(app), VfPort(0), Nanos::ZERO)
}

/// HTB conservation: everything enqueued is eventually dequeued or still
/// queued — never duplicated, never lost.
#[test]
fn htb_conserves_packets() {
    let mut rng = SimRng::seed(0xD15C);
    for _ in 0..30 {
        let n = rng.range(1, 300) as usize;
        let lens: Vec<u32> = (0..n).map(|_| rng.range(64, 1_519) as u32).collect();
        let rate_mbps = rng.range(10, 10_000);
        let mut htb = Htb::new(
            vec![
                HtbClassSpec::new(Handle(1), None, BitRate::from_mbps(rate_mbps)),
                HtbClassSpec::new(Handle(10), Some(Handle(1)), BitRate::from_mbps(rate_mbps)),
            ],
            KernelModel::ideal(),
        )
        .unwrap();
        let mut accepted = 0u64;
        for (i, &len) in lens.iter().enumerate() {
            if htb
                .enqueue(Handle(10), pkt(i as u64, len, 0))
                .unwrap()
                .is_ok()
            {
                accepted += 1;
            }
        }
        let mut dequeued = 0u64;
        let mut ids = std::collections::HashSet::new();
        let mut t = Nanos::ZERO;
        for _ in 0..10 * lens.len() {
            match htb.dequeue(t) {
                Some(p) => {
                    assert!(ids.insert(p.id), "duplicate packet {}", p.id);
                    dequeued += 1;
                }
                None => match htb.next_ready(t) {
                    Some(n) => t = n,
                    None => break,
                },
            }
        }
        assert_eq!(dequeued + htb.backlog_pkts() as u64, accepted);
        assert_eq!(htb.stats().enqueued, accepted);
        assert_eq!(htb.stats().dequeued, dequeued);
    }
}

/// A single HTB leaf never sustains more than its ceiling (with ideal
/// charging) over a long window, whatever the packet mix.
#[test]
fn htb_ideal_never_exceeds_ceiling() {
    let mut rng = SimRng::seed(0xD15D);
    for _ in 0..10 {
        let n = rng.range(50, 200) as usize;
        let lens: Vec<u32> = (0..n).map(|_| rng.range(64, 1_519) as u32).collect();
        let ceil_mbps = rng.range(50, 2_000);
        let ceil = BitRate::from_mbps(ceil_mbps);
        let mut htb = Htb::new(
            vec![
                HtbClassSpec::new(Handle(1), None, ceil),
                HtbClassSpec::new(Handle(10), Some(Handle(1)), ceil),
            ],
            KernelModel::ideal(),
        )
        .unwrap();
        // Keep the leaf always backlogged.
        let mut next_id = 0u64;
        let mut li = 0usize;
        let horizon = Nanos::from_millis(50);
        let mut t = Nanos::ZERO;
        let mut bits = 0u64;
        while t < horizon {
            while htb.backlog_pkts() < 64 {
                let len = lens[li % lens.len()];
                li += 1;
                let _ = htb.enqueue(Handle(10), pkt(next_id, len, 0)).unwrap();
                next_id += 1;
            }
            match htb.dequeue(t) {
                Some(p) => bits += p.frame_bits(),
                None => {
                    t = htb
                        .next_ready(t)
                        .unwrap_or(horizon)
                        .max(t + Nanos::from_nanos(1))
                }
            }
        }
        let achieved = bits as f64 / horizon.as_secs_f64();
        // Allowed: ceiling + the burst amortized over the window.
        let budget = ceil.as_bps() as f64 * 1.1 + 10.0 * 1518.0 * 8.0 / horizon.as_secs_f64();
        assert!(achieved <= budget, "{achieved} > {budget}");
    }
}

/// PRIO never reorders within a band and never dequeues across bands out
/// of priority order.
#[test]
fn prio_order_invariants() {
    let mut rng = SimRng::seed(0xD15E);
    for _ in 0..50 {
        let n = rng.range(1, 200) as usize;
        let bands: Vec<usize> = (0..n).map(|_| rng.index(3)).collect();
        let mut q = Prio::new(3, 1 << 20, 1 << 12);
        for (i, &b) in bands.iter().enumerate() {
            q.enqueue(b, pkt(i as u64, 64, b as u16)).unwrap();
        }
        let mut last_per_band = [None::<u64>; 3];
        while let Some(p) = q.dequeue() {
            let b = p.app.0 as usize;
            // FIFO within band.
            if let Some(last) = last_per_band[b] {
                assert!(p.id > last);
            }
            last_per_band[b] = Some(p.id);
            // No lower-priority band may still hold older deliverable
            // packets when a higher band was nonempty — implied by strict
            // priority + this FIFO check across the full drain.
        }
        assert_eq!(q.backlog_pkts(), 0);
    }
}

/// TBF long-run rate never exceeds its configuration.
#[test]
fn tbf_rate_bounded() {
    let mut rng = SimRng::seed(0xD15F);
    for _ in 0..15 {
        let rate_mbps = rng.range(10, 5_000);
        let burst_kb = rng.range(2, 64);
        let rate = BitRate::from_mbps(rate_mbps);
        let mut tbf = Tbf::new(rate, burst_kb * 1_024, 1 << 20, 4_096);
        let horizon = Nanos::from_millis(20);
        let mut t = Nanos::ZERO;
        let mut bits = 0u64;
        let mut id = 0u64;
        while t < horizon {
            while tbf.backlog_pkts() < 32 {
                let _ = tbf.enqueue(pkt(id, 1_518, 0));
                id += 1;
            }
            match tbf.dequeue(t) {
                Some(p) => bits += p.frame_bits(),
                None => {
                    t = tbf
                        .next_ready(t)
                        .unwrap_or(horizon)
                        .max(t + Nanos::from_nanos(1));
                }
            }
        }
        let achieved = bits as f64 / horizon.as_secs_f64();
        let budget = rate.as_bps() as f64 + (burst_kb * 1_024 * 8) as f64 / horizon.as_secs_f64();
        assert!(achieved <= budget * 1.02, "{achieved} > {budget}");
    }
}

/// DPDK QoS conserves packets across arbitrary enqueue patterns.
#[test]
fn dpdk_conserves_packets() {
    let mut rng = SimRng::seed(0xD160);
    for _ in 0..30 {
        let n = rng.range(1, 300) as usize;
        let targets: Vec<(usize, usize)> = (0..n).map(|_| (rng.index(4), rng.index(4))).collect();
        let mut q = DpdkQos::new(DpdkQosConfig::equal_pipes(BitRate::from_gbps(10.0), 4));
        let mut accepted = 0u64;
        for (i, &(pipe, tc)) in targets.iter().enumerate() {
            if q.enqueue(pipe, tc, pkt(i as u64, 1_000, pipe as u16))
                .is_ok()
            {
                accepted += 1;
            }
        }
        let mut dequeued = 0u64;
        let mut t = Nanos::ZERO;
        for _ in 0..10 * targets.len() {
            match q.dequeue(t) {
                Some(_) => dequeued += 1,
                None => match q.next_ready(t) {
                    Some(n) => t = n,
                    None => break,
                },
            }
        }
        assert_eq!(dequeued + q.backlog_pkts() as u64, accepted);
    }
}
