//! The assembled SmartNIC: ingress dispatch, run-to-completion processing,
//! an egress decision hook, per-VF reordering, and the wire-side FIFO.
//!
//! The egress decision hook ([`EgressDecider`]) is where schedulers plug
//! in: FlowValve's labeling + scheduling functions implement it in the
//! `flowvalve` crate, and [`PassthroughDecider`] provides the
//! scheduler-disabled baseline the paper uses to isolate pipeline latency.

use std::sync::Arc;

use fv_telemetry::metrics::{Counter, Histogram, RateWindow};
use fv_telemetry::span::{SpanRecorder, Stage};
use fv_telemetry::trace::{EventRing, TraceKind};
use fv_telemetry::Registry;
use netstack::packet::Packet;
use sim_core::time::{Cycles, Nanos};
use sim_core::units::BitRate;

use crate::config::NicConfig;
use crate::cost::{AttrStage, CostMeter, CycleAttr, Op};
use crate::engine::{Dispatch, WorkerPool};
use crate::fault::FaultInjector;
use crate::lock::LockTable;
use crate::tm::{TmDrop, TxFifo};

/// A scheduling verdict for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Transmit the packet to the wire.
    Forward,
    /// Drop the packet now (FlowValve's specialized early tail drop).
    Drop,
}

/// The pluggable egress scheduling function.
///
/// Implementations run inside a worker's run-to-completion routine: they
/// must charge every operation they perform to the [`CostMeter`] and model
/// inter-core serialization through the [`LockTable`].
pub trait EgressDecider: std::any::Any {
    /// Decides the fate of `pkt` processed at time `now`.
    fn decide(
        &mut self,
        pkt: &Packet,
        now: Nanos,
        meter: &mut CostMeter,
        locks: &mut LockTable,
    ) -> Decision;

    /// Human-readable name for experiment output.
    fn name(&self) -> &str {
        "decider"
    }

    /// Downcast support, so owners of a boxed decider can reach
    /// implementation-specific control interfaces (e.g. FlowValve's
    /// policy hot-reload).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Forwards every packet without scheduling (the paper's "FlowValve
/// disabled" configuration).
#[derive(Debug, Clone, Copy, Default)]
pub struct PassthroughDecider;

impl EgressDecider for PassthroughDecider {
    fn decide(
        &mut self,
        _pkt: &Packet,
        _now: Nanos,
        _meter: &mut CostMeter,
        _locks: &mut LockTable,
    ) -> Decision {
        Decision::Forward
    }

    fn name(&self) -> &str {
        "passthrough"
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// What happened to a packet offered to the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxOutcome {
    /// Dropped at ingress: no worker freed up within the receive budget.
    RxDrop,
    /// The scheduling function dropped the packet at time `at`.
    SchedDrop {
        /// When the decision completed.
        at: Nanos,
    },
    /// The traffic-manager FIFO was full at time `at`.
    TailDrop {
        /// When the enqueue attempt failed.
        at: Nanos,
    },
    /// Dropped by an injected fault (e.g. a TM corruption burst) at `at`.
    FaultDrop {
        /// When the fault consumed the packet.
        at: Nanos,
    },
    /// The packet was transmitted.
    Transmit {
        /// When the last bit left the wire.
        wire_done: Nanos,
        /// When the receiver sees the packet (wire + fixed pipeline latency).
        delivered: Nanos,
    },
}

/// Aggregate NIC counters.
///
/// Since the registry unification this is a *snapshot view*: the live
/// accounting lives in `fv-telemetry` counters under the `nic.*` namespace
/// (one source of truth), and [`SmartNic::stats`] materializes this struct
/// from their totals on demand.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Packets offered to the NIC.
    pub offered: u64,
    /// Ingress (receive-ring) drops.
    pub rx_drops: u64,
    /// Scheduling-function drops.
    pub sched_drops: u64,
    /// Traffic-manager tail drops.
    pub tail_drops: u64,
    /// Drops caused by injected faults.
    pub fault_drops: u64,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Frame bits transmitted.
    pub tx_bits: u64,
}

impl NicStats {
    /// Fraction of offered packets transmitted.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.tx_packets as f64 / self.offered as f64
    }
}

/// A simulated NP-based SmartNIC.
///
/// # Example
///
/// ```
/// use netstack::flow::FlowKey;
/// use netstack::packet::{AppId, Packet, VfPort};
/// use np_sim::config::NicConfig;
/// use np_sim::nic::{PassthroughDecider, RxOutcome, SmartNic};
/// use sim_core::time::Nanos;
///
/// let mut nic = SmartNic::new(NicConfig::agilio_cx_40g(), Box::new(PassthroughDecider));
/// let flow = FlowKey::tcp([10, 0, 0, 1], 4000, [10, 0, 0, 2], 5001);
/// let pkt = Packet::new(0, flow, 1518, AppId(0), VfPort(0), Nanos::ZERO);
/// match nic.rx(&pkt, Nanos::ZERO) {
///     RxOutcome::Transmit { delivered, .. } => assert!(delivered > Nanos::ZERO),
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
/// Registry handles for the NIC's own counters. These *are* the NIC's
/// accounting — [`NicStats`] is reconstituted from their totals.
struct NicTelemetry {
    registry: Registry,
    offered: Arc<Counter>,
    rx_drops: Arc<Counter>,
    sched_drops: Arc<Counter>,
    tail_drops: Arc<Counter>,
    fault_drops: Arc<Counter>,
    tx_packets: Arc<Counter>,
    tx_bits: Arc<Counter>,
    tx_rate: Arc<RateWindow>,
    latency: Arc<Histogram>,
    ring: Arc<EventRing>,
    spans: SpanRecorder,
}

pub struct SmartNic {
    config: NicConfig,
    workers: WorkerPool,
    locks: LockTable,
    fifo: TxFifo,
    decider: Box<dyn EgressDecider>,
    meter: CostMeter,
    /// Per-VF last release time into the transmit ring: the reorder system
    /// guarantees packets of one VF enter the FIFO in arrival order.
    vf_release: Vec<Nanos>,
    telemetry: NicTelemetry,
    fault: Option<Arc<dyn FaultInjector>>,
}

impl core::fmt::Debug for SmartNic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SmartNic")
            .field("config", &self.config)
            .field("decider", &self.decider.name())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl SmartNic {
    /// Builds a NIC from a validated configuration and an egress decider.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NicConfig::validate`].
    pub fn new(config: NicConfig, decider: Box<dyn EgressDecider>) -> Self {
        Self::with_registry(config, decider, &Registry::new())
    }

    /// Builds a NIC whose counters, gauges, and trace events live in
    /// `registry` (namespaces `nic.*`, `lock.*`, `tm.fifo.*`). Every
    /// component of the pipeline records into the same event ring, so a
    /// single [`Registry::snapshot`] shows drops by cause alongside lock
    /// contention and FIFO occupancy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NicConfig::validate`].
    pub fn with_registry(
        config: NicConfig,
        decider: Box<dyn EgressDecider>,
        registry: &Registry,
    ) -> Self {
        config.validate().expect("invalid NIC configuration");
        let mut locks = LockTable::new(64);
        locks.attach_telemetry(registry);
        let mut fifo = TxFifo::new(config.line_rate, config.framing, config.tm_queue_capacity);
        fifo.attach_telemetry(registry);
        let telemetry = NicTelemetry {
            registry: registry.clone(),
            offered: registry.counter("nic.offered"),
            rx_drops: registry.counter("nic.rx_drops"),
            sched_drops: registry.counter("nic.sched_drops"),
            tail_drops: registry.counter("nic.tail_drops"),
            // Detached until a fault injector exists: fault-free runs keep
            // their snapshot schema free of fault counters.
            fault_drops: Arc::new(Counter::new()),
            tx_packets: registry.counter("nic.tx_packets"),
            tx_bits: registry.counter("nic.tx_bits"),
            tx_rate: registry.rate("nic.tx_bits_rate", Nanos::from_micros(100)),
            latency: registry.histogram("nic.latency_ns"),
            ring: registry.ring(),
            spans: SpanRecorder::new(registry),
        };
        SmartNic {
            workers: WorkerPool::new(config.num_mes, config.freq, config.rx_max_wait),
            locks,
            fifo,
            meter: CostMeter::new(config.costs),
            vf_release: vec![Nanos::ZERO; 256],
            decider,
            config,
            telemetry,
            fault: None,
        }
    }

    /// Installs a fault injector across the whole pipeline: worker
    /// dispatch (micro-engine stalls), the per-packet cost meter (extra
    /// cycles), the traffic manager (wire degradation, pauses, corruption
    /// drops), and the lock table (hold-time inflation). The same
    /// scheduler code runs faulted or clean — only these hook points
    /// consult the injector.
    pub fn install_fault_injector(&mut self, injector: Arc<dyn FaultInjector>) {
        // Faults are now possible, so the fault-drop counters join the
        // registry; fault-free NICs keep their snapshot schema unchanged.
        let registry = self.telemetry.registry.clone();
        self.telemetry.fault_drops = registry.counter("nic.fault_drops");
        self.fifo.attach_fault_telemetry(&registry);
        self.fifo.set_fault_injector(Arc::clone(&injector));
        self.locks.set_fault_injector(Arc::clone(&injector));
        self.fault = Some(injector);
    }

    /// The NIC configuration.
    pub fn config(&self) -> &NicConfig {
        &self.config
    }

    /// Offers one packet arriving from the host at time `now`.
    ///
    /// Resolves the entire run-to-completion pipeline: worker dispatch,
    /// parse, the egress decision (with its cycle and lock costs), per-VF
    /// reorder, and the wire-side FIFO.
    pub fn rx(&mut self, pkt: &Packet, now: Nanos) -> RxOutcome {
        self.telemetry.offered.incr(0);
        let stall = self.fault.as_ref().and_then(|f| f.stalled_engines(now));
        let start = match self.workers.dispatch_with(now, stall) {
            Dispatch::RxOverflow => {
                self.telemetry.rx_drops.incr(0);
                self.telemetry
                    .ring
                    .record(now, TraceKind::RxDrop, pkt.id, pkt.vf.0 as u64);
                return RxOutcome::RxDrop;
            }
            Dispatch::Started { start } => start,
        };

        self.meter.reset();
        if let Some(engine) = self.workers.pending_engine() {
            self.meter.set_worker(engine);
        }
        self.meter.set_stage(AttrStage::Parse);
        self.meter.charge(Op::Parse);
        self.meter.charge(Op::ForwardBase);
        if let Some(f) = &self.fault {
            let extra = f.extra_cycles(start);
            if extra > 0 {
                self.meter.set_stage(AttrStage::Fault);
                self.meter.charge_cycles(Cycles::new(extra));
            }
        }
        self.meter.set_stage(AttrStage::Other);
        let decision = self
            .decider
            .decide(pkt, start, &mut self.meter, &mut self.locks);
        if decision == Decision::Forward {
            self.meter.set_stage(AttrStage::TxEnqueue);
            self.meter.charge(Op::TxEnqueue);
        }
        let done = self.workers.complete(start, self.meter.total());
        // Ingress span: time spent waiting for a free worker. Recorded even
        // when zero so the span count equals the dispatched-packet count.
        // Stamped after the decider ran so an attribution sink has already
        // seen this packet's classification verdict.
        self.telemetry
            .spans
            .record(Stage::Ingress, now, pkt.id, start - now);

        match decision {
            Decision::Drop => {
                self.telemetry.sched_drops.incr(0);
                RxOutcome::SchedDrop { at: done }
            }
            Decision::Forward => {
                let slot = &mut self.vf_release[pkt.vf.0 as usize];
                let release = done.max(*slot);
                *slot = release;
                match self.fifo.enqueue_pkt(pkt.frame_len, release, pkt.id) {
                    Ok(wire_done) => {
                        let delivered = wire_done + self.config.base_pipeline_latency;
                        self.telemetry.tx_packets.incr(0);
                        self.telemetry.tx_bits.add(0, pkt.frame_bits());
                        self.telemetry.tx_rate.record(wire_done, pkt.frame_bits());
                        self.telemetry.latency.record_nanos(delivered - now);
                        RxOutcome::Transmit {
                            wire_done,
                            delivered,
                        }
                    }
                    Err(TmDrop::TailDrop) => {
                        self.telemetry.tail_drops.incr(0);
                        RxOutcome::TailDrop { at: release }
                    }
                    Err(TmDrop::CorruptDrop) => {
                        self.telemetry.fault_drops.incr(0);
                        RxOutcome::FaultDrop { at: release }
                    }
                    // The TM only ever refuses with the two causes above;
                    // the scheduler/queue causes cannot reach this FIFO.
                    Err(_) => RxOutcome::TailDrop { at: release },
                }
            }
        }
    }

    /// Aggregate counters, materialized from the registry totals.
    pub fn stats(&self) -> NicStats {
        NicStats {
            offered: self.telemetry.offered.total(),
            rx_drops: self.telemetry.rx_drops.total(),
            sched_drops: self.telemetry.sched_drops.total(),
            tail_drops: self.telemetry.tail_drops.total(),
            fault_drops: self.telemetry.fault_drops.total(),
            tx_packets: self.telemetry.tx_packets.total(),
            tx_bits: self.telemetry.tx_bits.total(),
        }
    }

    /// The registry this NIC records into.
    pub fn registry(&self) -> &Registry {
        &self.telemetry.registry
    }

    /// Publishes point-in-time gauges — per-micro-engine utilization over
    /// `[0, horizon]`, in permille — into the registry. Call right before
    /// taking a snapshot; it is a cold-path operation.
    pub fn sync_gauges(&self, horizon: Nanos) {
        for (i, u) in self.workers.engine_utilization(horizon).iter().enumerate() {
            self.telemetry
                .registry
                .gauge(&format!("nic.me{i}.busy_permille"))
                .set((u * 1000.0).round() as u64);
        }
    }

    /// Achieved frame-bit throughput over `[0, horizon]`.
    pub fn throughput(&self, horizon: Nanos) -> BitRate {
        self.fifo.throughput(horizon)
    }

    /// Bytes still waiting in (or on) the TM serializer at `t` — the
    /// fault-recovery harness asserts this drains after a wire fault.
    pub fn tm_backlog_bytes(&self, t: Nanos) -> u64 {
        self.fifo.backlog_bytes(t)
    }

    /// Attaches a shared cycle-attribution array to the per-packet cost
    /// meter: every subsequent charge folds into it under a
    /// `(phase, op, worker)` context. Size it for `config.num_mes`
    /// workers (one row per modeled micro-engine).
    pub fn attach_probe(&mut self, attr: Arc<CycleAttr>) {
        self.meter.attach_attr(attr);
    }

    /// Lock contention statistics from the decider's lock usage.
    pub fn lock_stats(&self) -> crate::lock::LockStats {
        self.locks.stats()
    }

    /// Per-lock attribution rows from the decider's lock usage, indexed by
    /// [`crate::lock::LockId`].
    pub fn per_lock_stats(&self) -> &[crate::lock::PerLockStats] {
        self.locks.per_lock_stats()
    }

    /// Worker-pool utilization over `[0, horizon]`.
    pub fn worker_utilization(&self, horizon: Nanos) -> f64 {
        self.workers.utilization(horizon)
    }

    /// Mutable access to the decider (e.g. to update policies mid-run).
    pub fn decider_mut(&mut self) -> &mut dyn EgressDecider {
        &mut *self.decider
    }

    /// Downcasts the decider to a concrete type, for control interfaces
    /// like FlowValve's policy hot-reload.
    pub fn decider_as<T: 'static>(&mut self) -> Option<&mut T> {
        self.decider.as_any_mut().downcast_mut::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::flow::FlowKey;
    use netstack::packet::{AppId, VfPort};

    fn pkt(id: u64, vf: u8, len: u32) -> Packet {
        let flow = FlowKey::tcp([10, 0, 0, 1], 4000 + vf as u16, [10, 0, 0, 2], 5001);
        Packet::new(id, flow, len, AppId(vf as u16), VfPort(vf), Nanos::ZERO)
    }

    /// Drops every packet of VF 1.
    struct DropVf1;
    impl EgressDecider for DropVf1 {
        fn decide(
            &mut self,
            pkt: &Packet,
            _now: Nanos,
            _meter: &mut CostMeter,
            _locks: &mut LockTable,
        ) -> Decision {
            if pkt.vf.0 == 1 {
                Decision::Drop
            } else {
                Decision::Forward
            }
        }

        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn passthrough_transmits() {
        let mut nic = SmartNic::new(NicConfig::agilio_cx_40g(), Box::new(PassthroughDecider));
        match nic.rx(&pkt(0, 0, 1518), Nanos::ZERO) {
            RxOutcome::Transmit {
                wire_done,
                delivered,
            } => {
                assert!(wire_done > Nanos::ZERO);
                assert_eq!(delivered, wire_done + nic.config().base_pipeline_latency);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(nic.stats().tx_packets, 1);
        assert_eq!(nic.stats().delivery_ratio(), 1.0);
    }

    #[test]
    fn decider_drops_are_counted() {
        let mut nic = SmartNic::new(NicConfig::agilio_cx_40g(), Box::new(DropVf1));
        assert!(matches!(
            nic.rx(&pkt(0, 1, 64), Nanos::ZERO),
            RxOutcome::SchedDrop { .. }
        ));
        assert!(matches!(
            nic.rx(&pkt(1, 0, 64), Nanos::ZERO),
            RxOutcome::Transmit { .. }
        ));
        let s = nic.stats();
        assert_eq!(s.sched_drops, 1);
        assert_eq!(s.tx_packets, 1);
        assert_eq!(s.offered, 2);
    }

    #[test]
    fn per_vf_release_is_monotonic() {
        let mut nic = SmartNic::new(NicConfig::agilio_cx_40g(), Box::new(PassthroughDecider));
        let mut last = Nanos::ZERO;
        for i in 0..20 {
            if let RxOutcome::Transmit { wire_done, .. } =
                nic.rx(&pkt(i, 0, 1518), Nanos::from_nanos(i * 10))
            {
                assert!(wire_done > last, "packet {i} reordered");
                last = wire_done;
            } else {
                panic!("packet {i} not transmitted");
            }
        }
    }

    #[test]
    fn overload_causes_drops() {
        // 64B packets at far beyond compute capacity must shed load
        // (via rx overflow and/or TM tail drop) but keep the wire busy.
        let mut nic = SmartNic::new(NicConfig::agilio_cx_40g(), Box::new(PassthroughDecider));
        let horizon = Nanos::from_micros(200);
        let mut t = Nanos::ZERO;
        let mut i = 0u64;
        while t < horizon {
            let _ = nic.rx(&pkt(i, (i % 4) as u8, 64), t);
            i += 1;
            t += Nanos::from_nanos(8); // 125 Mpps offered: hopeless overload
        }
        let s = nic.stats();
        assert!(s.rx_drops + s.tail_drops > 0, "{s:?}");
        assert!(s.tx_packets > 0);
        assert!(s.delivery_ratio() < 1.0);
    }

    #[test]
    fn line_rate_sustained_for_mtu_frames() {
        // 1518B at exactly line rate: the pipeline must not be the bottleneck.
        let cfg = NicConfig::agilio_cx_40g();
        let gap = cfg.framing.serialization_time(cfg.line_rate, 1518);
        let mut nic = SmartNic::new(cfg, Box::new(PassthroughDecider));
        let horizon = Nanos::from_millis(2);
        let mut t = Nanos::ZERO;
        let mut i = 0u64;
        let mut sent = 0u64;
        while t < horizon {
            if matches!(nic.rx(&pkt(i, 0, 1518), t), RxOutcome::Transmit { .. }) {
                sent += 1;
            }
            i += 1;
            t += gap;
        }
        assert_eq!(sent, i, "dropped {} of {} at line rate", i - sent, i);
        let tput = nic.throughput(horizon);
        assert!(tput.as_gbps() > 38.0, "throughput {tput}");
    }

    #[test]
    fn registry_is_the_source_of_truth() {
        let reg = Registry::new();
        let mut nic = SmartNic::with_registry(NicConfig::agilio_cx_40g(), Box::new(DropVf1), &reg);
        nic.rx(&pkt(0, 1, 64), Nanos::ZERO); // sched drop
        nic.rx(&pkt(1, 0, 1518), Nanos::ZERO); // transmit
        let snap = reg.snapshot(Nanos::from_micros(10));
        assert_eq!(snap.counter("nic.offered"), 2);
        assert_eq!(snap.counter("nic.sched_drops"), 1);
        assert_eq!(snap.counter("nic.tx_packets"), 1);
        // The wire-side FIFO recorded the same packet under its namespace.
        assert_eq!(snap.counter("tm.fifo.tx_packets"), 1);
        // NicStats is a view over the same counters.
        let s = nic.stats();
        assert_eq!(s.offered, snap.counter("nic.offered"));
        assert_eq!(s.tx_bits, snap.counter("nic.tx_bits"));
        let lat = snap.histogram("nic.latency_ns").expect("latency histogram");
        assert_eq!(lat.count, 1);
        assert!(lat.min > 0);
    }

    #[test]
    fn sync_gauges_publishes_per_engine_utilization() {
        let reg = Registry::new();
        let mut nic = SmartNic::with_registry(
            NicConfig::agilio_cx_40g(),
            Box::new(PassthroughDecider),
            &reg,
        );
        for i in 0..50 {
            let _ = nic.rx(&pkt(i, 0, 1518), Nanos::from_nanos(i * 300));
        }
        let horizon = Nanos::from_micros(20);
        nic.sync_gauges(horizon);
        let snap = reg.snapshot(horizon);
        let engines: Vec<_> = snap.with_prefix("nic.me").collect();
        assert_eq!(engines.len(), nic.config().num_mes);
        assert!(
            snap.with_prefix("nic.me")
                .any(|e| !matches!(e.value, fv_telemetry::MetricValue::Gauge { value: 0, .. })),
            "no engine showed utilization"
        );
    }

    #[test]
    fn transmit_path_stamps_stage_spans() {
        let reg = Registry::new();
        let mut nic = SmartNic::with_registry(
            NicConfig::agilio_cx_40g(),
            Box::new(PassthroughDecider),
            &reg,
        );
        // Two back-to-back MTU frames: the second waits in the TM FIFO.
        assert!(matches!(
            nic.rx(&pkt(7, 0, 1518), Nanos::ZERO),
            RxOutcome::Transmit { .. }
        ));
        assert!(matches!(
            nic.rx(&pkt(8, 0, 1518), Nanos::from_nanos(1)),
            RxOutcome::Transmit { .. }
        ));
        let snap = reg.snapshot(Nanos::from_micros(10));
        for metric in ["span.ingress_ns", "span.tm_queue_ns", "span.wire_ns"] {
            let h = snap.histogram(metric).unwrap_or_else(|| panic!("{metric}"));
            assert_eq!(h.count, 2, "{metric}");
        }
        // Wire spans carry the serialization time; the second packet's
        // tm_queue span is nonzero (it queued behind the first).
        let wire = snap.histogram("span.wire_ns").unwrap();
        assert!(wire.min > 0);
        let events = reg.ring().recent(64);
        assert!(events
            .iter()
            .any(|e| e.kind == TraceKind::SpanWire && e.a == 8 && e.b > 0));
        assert!(events
            .iter()
            .any(|e| e.kind == TraceKind::SpanTmQueue && e.a == 8 && e.b > 0));
    }

    #[test]
    fn installed_injector_perturbs_and_then_clears() {
        use crate::fault::{FaultInjector, TmFault};

        /// Corrupts every TM enqueue and stalls all engines inside
        /// `[2us, 4us)`; clean elsewhere.
        #[derive(Debug)]
        struct Window;
        impl FaultInjector for Window {
            fn tm_fault(&self, now: Nanos, _pkt_id: u64) -> TmFault {
                if now >= Nanos::from_micros(2) && now < Nanos::from_micros(4) {
                    TmFault::CorruptDrop
                } else {
                    TmFault::None
                }
            }
        }
        let reg = Registry::new();
        let mut nic = SmartNic::with_registry(
            NicConfig::agilio_cx_40g(),
            Box::new(PassthroughDecider),
            &reg,
        );
        nic.install_fault_injector(Arc::new(Window));
        let gap = Nanos::from_micros(1);
        let mut fault_drops = 0;
        let mut transmitted = 0;
        for i in 0..8u64 {
            match nic.rx(&pkt(i, 0, 1518), gap * i) {
                RxOutcome::FaultDrop { .. } => fault_drops += 1,
                RxOutcome::Transmit { .. } => transmitted += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(fault_drops, 2); // t = 2us, 3us
        assert_eq!(transmitted, 6);
        let s = nic.stats();
        assert_eq!(s.fault_drops, 2);
        assert_eq!(reg.snapshot(Nanos::ZERO).counter("nic.fault_drops"), 2);
        assert_eq!(reg.snapshot(Nanos::ZERO).counter("tm.fifo.fault_drops"), 2);
    }

    #[test]
    fn debug_impl_mentions_decider() {
        let nic = SmartNic::new(NicConfig::agilio_cx_40g(), Box::new(PassthroughDecider));
        assert!(format!("{nic:?}").contains("passthrough"));
    }
}
