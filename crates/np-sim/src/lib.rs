//! An executable model of an NP-based SmartNIC (Netronome Agilio-like)
//! for the FlowValve reproduction.
//!
//! The paper prototypes FlowValve on real silicon; this crate substitutes a
//! calibrated discrete-time model that preserves the properties the paper's
//! claims rest on:
//!
//! * **Run-to-completion multi-core processing** ([`engine`]): packets are
//!   pulled by the earliest-available micro-engine; aggregate throughput is
//!   `num_mes × freq / cycles_per_packet`, the regime behind Figure 13.
//! * **Explicit cycle accounting** ([`cost`]): every pipeline stage charges
//!   instruction cycles to a [`CostMeter`].
//! * **Modeled lock contention** ([`lock`]): virtual-time `try_acquire` /
//!   blocking acquire semantics with wait accounting — the substrate for
//!   the paper's Figure 7 lock-granularity comparison.
//! * **An uncontrollable wire-side FIFO** ([`tm`]): the transmit buffer +
//!   traffic manager reduce to a fixed-rate serializer with tail drop,
//!   which is exactly the abstraction FlowValve schedules against.
//! * **A pluggable egress decision hook** ([`nic::EgressDecider`]) where
//!   the `flowvalve` crate installs its labeling + scheduling functions.
//! * **An open-loop stress harness** ([`harness`]) for the Figure 13/14
//!   experiments.
//!
//! # Example
//!
//! ```
//! use np_sim::config::NicConfig;
//! use np_sim::nic::{PassthroughDecider, SmartNic};
//!
//! let nic = SmartNic::new(NicConfig::agilio_cx_40g(), Box::new(PassthroughDecider));
//! assert_eq!(nic.config().num_mes, 50);
//! ```

pub mod config;
pub mod cost;
pub mod engine;
pub mod fault;
pub mod harness;
pub mod lock;
pub mod nic;
pub mod tm;
pub mod tm_multi;

pub use config::{CycleCosts, NicConfig};
pub use cost::{AttrCell, AttrStage, CostMeter, CycleAttr, Op, ATTR_STAGES};
pub use fault::{FaultInjector, TmFault};
pub use lock::{LockId, LockTable, PerLockStats};
pub use nic::{Decision, EgressDecider, NicStats, PassthroughDecider, RxOutcome, SmartNic};
pub use tm::{TmDrop, TxFifo};
pub use tm_multi::{HwQueueConfig, MultiQueueTm};
