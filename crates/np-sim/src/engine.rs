//! Worker micro-engine pool.
//!
//! Each micro-engine is modeled as a run-to-completion server that retires
//! instruction cycles at the configured clock rate. The 4-8 hardware
//! threads per ME exist to hide memory-stall latency, so stall time shows
//! up as fixed pipeline latency, not throughput loss; aggregate NIC
//! throughput is `num_mes × freq / instruction_cycles_per_packet`, exactly
//! the regime the paper's Figure 13 measures.
//!
//! Dispatch policy: an arriving packet is pulled by the earliest-available
//! ME (the NFP's cluster load balancer); if even that ME could not start the
//! packet within `rx_max_wait`, the receive ring has overflowed and the
//! packet is dropped at ingress.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sim_core::time::{Cycles, Freq, Nanos};

/// Outcome of trying to dispatch a packet to a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// A worker accepted the packet and will begin processing at `start`.
    Started {
        /// When the worker begins executing (≥ arrival time).
        start: Nanos,
    },
    /// All workers are backlogged past the receive-ring budget.
    RxOverflow,
}

/// A pool of worker micro-engines.
///
/// # Example
///
/// ```
/// use np_sim::engine::{Dispatch, WorkerPool};
/// use sim_core::time::{Cycles, Freq, Nanos};
///
/// let mut pool = WorkerPool::new(2, Freq::from_mhz(1000), Nanos::from_micros(1));
/// // Both workers idle: packets start immediately.
/// let d = pool.dispatch(Nanos::ZERO);
/// assert_eq!(d, Dispatch::Started { start: Nanos::ZERO });
/// pool.complete(Nanos::ZERO, Cycles::new(500)); // busy until 500 ns
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    /// Min-heap of `(free time, engine index)` pairs.
    free_at: BinaryHeap<Reverse<(Nanos, usize)>>,
    freq: Freq,
    rx_max_wait: Nanos,
    rx_drops: u64,
    dispatched: u64,
    /// Instruction cycles retired by each micro-engine individually.
    busy: Vec<Cycles>,
    /// Worker popped by `dispatch`, awaiting `complete`.
    pending: Option<(Nanos, usize)>,
}

impl WorkerPool {
    /// Creates a pool of `n` workers at clock `freq`, dropping packets that
    /// would wait longer than `rx_max_wait` for a worker.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, freq: Freq, rx_max_wait: Nanos) -> Self {
        assert!(n > 0, "worker pool cannot be empty");
        WorkerPool {
            free_at: (0..n).map(|i| Reverse((Nanos::ZERO, i))).collect(),
            freq,
            rx_max_wait,
            rx_drops: 0,
            dispatched: 0,
            busy: vec![Cycles::ZERO; n],
            pending: None,
        }
    }

    /// Number of workers (idle or busy).
    pub fn len(&self) -> usize {
        self.free_at.len() + usize::from(self.pending.is_some())
    }

    /// Whether the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to hand a packet arriving at `now` to the earliest-free
    /// worker. On success the caller *must* follow up with
    /// [`WorkerPool::complete`] to report the measured service cost.
    ///
    /// # Panics
    ///
    /// Panics if a previous dispatch was not completed.
    pub fn dispatch(&mut self, now: Nanos) -> Dispatch {
        assert!(self.pending.is_none(), "previous dispatch not completed");
        let Reverse((free, engine)) = *self.free_at.peek().expect("pool is non-empty");
        let start = free.max(now);
        if start - now > self.rx_max_wait {
            self.rx_drops += 1;
            return Dispatch::RxOverflow;
        }
        self.free_at.pop();
        self.pending = Some((start, engine));
        self.dispatched += 1;
        Dispatch::Started { start }
    }

    /// [`WorkerPool::dispatch`] under an injected micro-engine stall:
    /// engines `0..k` (for `stall = Some((k, until))`) cannot *start* new
    /// work before `until`, modeling a cluster losing workers mid-run. The
    /// load balancer picks the earliest *effective* start among all
    /// engines, so packets flow to the surviving engines and the stalled
    /// ones rejoin once the window clears.
    pub fn dispatch_with(&mut self, now: Nanos, stall: Option<(usize, Nanos)>) -> Dispatch {
        let Some((k, until)) = stall.filter(|&(k, _)| k > 0) else {
            return self.dispatch(now);
        };
        assert!(self.pending.is_none(), "previous dispatch not completed");
        // The heap is ordered by raw free time, which a stall invalidates;
        // scan all engines for the earliest effective start. The pool is
        // tens of engines and this path only runs inside fault windows.
        let mut entries: Vec<(Nanos, usize)> = Vec::with_capacity(self.free_at.len());
        while let Some(Reverse(e)) = self.free_at.pop() {
            entries.push(e);
        }
        let effective = |&(free, engine): &(Nanos, usize)| {
            if engine < k {
                (free.max(until), engine)
            } else {
                (free, engine)
            }
        };
        let best = entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| effective(e))
            .map(|(i, _)| i)
            .expect("pool is non-empty");
        let (free, engine) = entries.swap_remove(best);
        for e in entries {
            self.free_at.push(Reverse(e));
        }
        let start = effective(&(free, engine)).0.max(now);
        if start - now > self.rx_max_wait {
            self.rx_drops += 1;
            self.free_at.push(Reverse((free, engine)));
            return Dispatch::RxOverflow;
        }
        self.pending = Some((start, engine));
        self.dispatched += 1;
        Dispatch::Started { start }
    }

    /// Completes the pending dispatch: the worker that started at `start`
    /// consumed `cost` instruction cycles. Returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if there is no pending dispatch or `start` does not match it.
    pub fn complete(&mut self, start: Nanos, cost: Cycles) -> Nanos {
        let (pending, engine) = self.pending.take().expect("no pending dispatch");
        assert_eq!(pending, start, "completion does not match dispatch");
        let done = start + self.freq.duration_of(cost);
        self.busy[engine] += cost;
        self.free_at.push(Reverse((done, engine)));
        done
    }

    /// Abandons the pending dispatch without charging work (e.g. the packet
    /// was consumed by an earlier pipeline stage).
    ///
    /// # Panics
    ///
    /// Panics if there is no pending dispatch.
    pub fn abandon(&mut self, start: Nanos) {
        let (pending, engine) = self.pending.take().expect("no pending dispatch");
        assert_eq!(pending, start, "abandon does not match dispatch");
        self.free_at.push(Reverse((start, engine)));
        self.dispatched -= 1;
    }

    /// The micro-engine index of the in-flight dispatch, if any — the
    /// worker axis for cycle attribution.
    pub fn pending_engine(&self) -> Option<usize> {
        self.pending.map(|(_, engine)| engine)
    }

    /// Packets dropped at ingress because no worker freed up in time.
    pub fn rx_drops(&self) -> u64 {
        self.rx_drops
    }

    /// Packets successfully dispatched to workers.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Total instruction cycles executed by all workers.
    pub fn busy_cycles(&self) -> Cycles {
        self.busy.iter().fold(Cycles::ZERO, |acc, &c| acc + c)
    }

    /// Instruction cycles retired by each micro-engine, indexed by engine.
    pub fn engine_busy_cycles(&self) -> &[Cycles] {
        &self.busy
    }

    /// Aggregate worker utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        if horizon == Nanos::ZERO {
            return 0.0;
        }
        let capacity = self.len() as f64 * self.freq.cycles_in(horizon).get() as f64;
        (self.busy_cycles().get() as f64 / capacity).min(1.0)
    }

    /// Per-micro-engine utilization over `[0, horizon]`, indexed by engine.
    pub fn engine_utilization(&self, horizon: Nanos) -> Vec<f64> {
        if horizon == Nanos::ZERO {
            return vec![0.0; self.busy.len()];
        }
        let capacity = self.freq.cycles_in(horizon).get() as f64;
        self.busy
            .iter()
            .map(|b| (b.get() as f64 / capacity).min(1.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> WorkerPool {
        WorkerPool::new(n, Freq::from_mhz(1000), Nanos::from_micros(1))
    }

    #[test]
    fn idle_pool_starts_immediately() {
        let mut p = pool(4);
        match p.dispatch(Nanos::from_nanos(7)) {
            Dispatch::Started { start } => assert_eq!(start, Nanos::from_nanos(7)),
            other => panic!("unexpected {other:?}"),
        }
        p.complete(Nanos::from_nanos(7), Cycles::new(100));
    }

    #[test]
    fn busy_pool_queues_until_budget() {
        let mut p = pool(1);
        // One packet occupies the single worker for 1000 cycles = 1 us.
        let Dispatch::Started { start } = p.dispatch(Nanos::ZERO) else {
            panic!()
        };
        let done = p.complete(start, Cycles::new(1_000));
        assert_eq!(done, Nanos::from_micros(1));
        // A packet arriving at t=0 would wait exactly 1 us = rx_max_wait: allowed.
        let Dispatch::Started { start } = p.dispatch(Nanos::ZERO) else {
            panic!()
        };
        assert_eq!(start, Nanos::from_micros(1));
        let done2 = p.complete(start, Cycles::new(2_000));
        // A packet at t=0 now needs to wait 3 us > 1 us budget: dropped.
        assert_eq!(p.dispatch(Nanos::ZERO), Dispatch::RxOverflow);
        assert_eq!(p.rx_drops(), 1);
        // But at t = done2 the worker is free again.
        let Dispatch::Started { start } = p.dispatch(done2) else {
            panic!()
        };
        assert_eq!(start, done2);
        p.complete(start, Cycles::ZERO);
    }

    #[test]
    fn workers_load_balance() {
        let mut p = pool(2);
        let Dispatch::Started { start: s1 } = p.dispatch(Nanos::ZERO) else {
            panic!()
        };
        p.complete(s1, Cycles::new(10_000));
        // Second packet goes to the other (idle) worker.
        let Dispatch::Started { start: s2 } = p.dispatch(Nanos::from_nanos(1)) else {
            panic!()
        };
        assert_eq!(s2, Nanos::from_nanos(1));
        p.complete(s2, Cycles::new(10));
    }

    #[test]
    fn throughput_matches_aggregate_cycle_rate() {
        // 2 workers x 1 GHz, 1000 cycles/pkt => 2 Mpps. Offer 4 Mpps for 1 ms.
        let mut p = WorkerPool::new(2, Freq::from_mhz(1000), Nanos::from_micros(5));
        let mut accepted = 0u64;
        let horizon = Nanos::from_millis(1);
        let mut t = Nanos::ZERO;
        while t < horizon {
            if let Dispatch::Started { start } = p.dispatch(t) {
                p.complete(start, Cycles::new(1_000));
                accepted += 1;
            }
            t += Nanos::from_nanos(250); // 4 Mpps offered
        }
        let achieved_mpps = accepted as f64 / horizon.as_secs_f64() / 1e6;
        assert!(
            (achieved_mpps - 2.0).abs() < 0.1,
            "got {achieved_mpps} Mpps"
        );
        assert!(p.utilization(horizon) > 0.95);
    }

    #[test]
    fn abandon_returns_worker_unchanged() {
        let mut p = pool(1);
        let Dispatch::Started { start } = p.dispatch(Nanos::ZERO) else {
            panic!()
        };
        p.abandon(start);
        assert_eq!(p.dispatched(), 0);
        // Worker is immediately available again.
        let Dispatch::Started { start } = p.dispatch(Nanos::ZERO) else {
            panic!()
        };
        assert_eq!(start, Nanos::ZERO);
        p.complete(start, Cycles::ZERO);
    }

    #[test]
    fn stalled_engines_are_skipped_until_window_clears() {
        let mut p = pool(2);
        let until = Nanos::from_nanos(600);
        // Engine 0 stalled: work lands on engine 1.
        let Dispatch::Started { start } = p.dispatch_with(Nanos::ZERO, Some((1, until))) else {
            panic!()
        };
        assert_eq!(start, Nanos::ZERO);
        let (_, engine) = p.pending.unwrap();
        assert_eq!(engine, 1);
        p.complete(start, Cycles::new(100));
        // Engine 1 busy until 100 ns, engine 0 stalled until 600 ns: the
        // balancer prefers the sooner of the two effective starts.
        let Dispatch::Started { start } = p.dispatch_with(Nanos::from_nanos(50), Some((1, until)))
        else {
            panic!()
        };
        assert_eq!(start, Nanos::from_nanos(100));
        p.complete(start, Cycles::new(100));
        // With every engine stalled past the rx budget, dispatch overflows.
        let mut p1 = pool(1);
        let d = p1.dispatch_with(Nanos::ZERO, Some((1, Nanos::from_millis(1))));
        assert_eq!(d, Dispatch::RxOverflow);
        assert_eq!(p1.rx_drops(), 1);
        // And a no-stall call is the plain dispatch fast path.
        let Dispatch::Started { start } = p1.dispatch_with(Nanos::ZERO, None) else {
            panic!()
        };
        assert_eq!(start, Nanos::ZERO);
        p1.complete(start, Cycles::ZERO);
    }

    #[test]
    #[should_panic]
    fn double_dispatch_without_complete_panics() {
        let mut p = pool(2);
        let _ = p.dispatch(Nanos::ZERO);
        let _ = p.dispatch(Nanos::ZERO);
    }

    #[test]
    fn utilization_zero_horizon() {
        let p = pool(1);
        assert_eq!(p.utilization(Nanos::ZERO), 0.0);
        assert_eq!(p.engine_utilization(Nanos::ZERO), vec![0.0]);
    }

    #[test]
    fn per_engine_busy_is_tracked() {
        let mut p = pool(2);
        for i in 0..4u64 {
            let Dispatch::Started { start } = p.dispatch(Nanos::from_nanos(i)) else {
                panic!()
            };
            p.complete(start, Cycles::new(100));
        }
        let per = p.engine_busy_cycles().to_vec();
        assert_eq!(per.len(), 2);
        assert_eq!(
            per.iter().fold(Cycles::ZERO, |a, &c| a + c),
            p.busy_cycles()
        );
        // The load balancer alternates between the two idle engines.
        assert!(per.iter().all(|c| c.get() > 0), "{per:?}");
        let u = p.engine_utilization(Nanos::from_micros(1));
        assert_eq!(u.len(), 2);
        assert!(u.iter().all(|&x| x > 0.0 && x <= 1.0), "{u:?}");
    }
}
