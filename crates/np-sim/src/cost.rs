//! Cycle-cost metering for the run-to-completion processing path.
//!
//! Every stage that touches a packet charges instruction cycles to a
//! [`CostMeter`]; the worker-pool model turns the accumulated total into
//! service time. Keeping the meter explicit (rather than burying constants
//! in the pipeline) is what makes the Figure 13 ablations possible: the
//! same scheduling code can be re-costed under different hardware
//! assumptions.

use sim_core::time::Cycles;

use crate::config::CycleCosts;

/// A processing operation with a configured cycle cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Header parsing and metadata setup.
    Parse,
    /// Flow-cache hit lookup.
    ClassifyHit,
    /// Flow-cache miss: filter walk + insert.
    ClassifyMiss,
    /// One atomic meter/counter operation.
    AtomicOp,
    /// One guarded class update (token refill + rate recomputation).
    ClassUpdate,
    /// One lock acquire/release pair (uncontended cost).
    LockOp,
    /// Traffic-manager enqueue descriptor work.
    TxEnqueue,
    /// Base forwarding work common to every packet.
    ForwardBase,
}

/// Accumulates instruction cycles charged while processing one packet.
///
/// # Example
///
/// ```
/// use np_sim::config::CycleCosts;
/// use np_sim::cost::{CostMeter, Op};
///
/// let mut m = CostMeter::new(CycleCosts::agilio());
/// m.charge(Op::Parse);
/// m.charge_n(Op::AtomicOp, 3);
/// assert_eq!(m.total().get(), 260 + 3 * 40);
/// ```
#[derive(Debug, Clone)]
pub struct CostMeter {
    costs: CycleCosts,
    total: Cycles,
    ops: u64,
}

impl CostMeter {
    /// Creates a meter with the given cost table.
    pub fn new(costs: CycleCosts) -> Self {
        CostMeter {
            costs,
            total: Cycles::ZERO,
            ops: 0,
        }
    }

    fn cost_of(&self, op: Op) -> u64 {
        match op {
            Op::Parse => self.costs.parse,
            Op::ClassifyHit => self.costs.classify_hit,
            Op::ClassifyMiss => self.costs.classify_miss,
            Op::AtomicOp => self.costs.atomic_op,
            Op::ClassUpdate => self.costs.class_update,
            Op::LockOp => self.costs.lock_op,
            Op::TxEnqueue => self.costs.tx_enqueue,
            Op::ForwardBase => self.costs.forward_base,
        }
    }

    /// Charges one operation.
    pub fn charge(&mut self, op: Op) {
        self.charge_n(op, 1);
    }

    /// Charges `n` repetitions of an operation.
    pub fn charge_n(&mut self, op: Op, n: u64) {
        self.total += Cycles::new(self.cost_of(op) * n);
        self.ops += n;
    }

    /// Charges a raw cycle amount (for costs not in the table).
    pub fn charge_cycles(&mut self, c: Cycles) {
        self.total += c;
        if c > Cycles::ZERO {
            self.ops += 1;
        }
    }

    /// Total cycles charged so far.
    pub fn total(&self) -> Cycles {
        self.total
    }

    /// Number of charge operations recorded.
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// Resets the meter for the next packet, keeping the cost table.
    pub fn reset(&mut self) {
        self.total = Cycles::ZERO;
        self.ops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut m = CostMeter::new(CycleCosts::agilio());
        m.charge(Op::Parse);
        m.charge(Op::ClassifyHit);
        m.charge(Op::ForwardBase);
        let c = CycleCosts::agilio();
        assert_eq!(m.total().get(), c.parse + c.classify_hit + c.forward_base);
        assert_eq!(m.op_count(), 3);
    }

    #[test]
    fn charge_n_multiplies() {
        let mut m = CostMeter::new(CycleCosts::agilio());
        m.charge_n(Op::ClassUpdate, 4);
        assert_eq!(m.total().get(), 4 * 260);
    }

    #[test]
    fn raw_cycles_and_reset() {
        let mut m = CostMeter::new(CycleCosts::agilio());
        m.charge_cycles(Cycles::new(123));
        assert_eq!(m.total().get(), 123);
        m.reset();
        assert_eq!(m.total(), Cycles::ZERO);
        assert_eq!(m.op_count(), 0);
    }

    #[test]
    fn zero_raw_charge_not_counted_as_op() {
        let mut m = CostMeter::new(CycleCosts::agilio());
        m.charge_cycles(Cycles::ZERO);
        assert_eq!(m.op_count(), 0);
    }

    #[test]
    fn miss_is_much_more_expensive_than_hit() {
        // The paper's Observation 2: the exact-match flow cache accelerates
        // lookups ~10x over the kernel path; our miss/hit ratio reflects it.
        let c = CycleCosts::agilio();
        assert!(c.classify_miss >= 10 * c.classify_hit);
    }
}
