//! Cycle-cost metering for the run-to-completion processing path.
//!
//! Every stage that touches a packet charges instruction cycles to a
//! [`CostMeter`]; the worker-pool model turns the accumulated total into
//! service time. Keeping the meter explicit (rather than burying constants
//! in the pipeline) is what makes the Figure 13 ablations possible: the
//! same scheduling code can be re-costed under different hardware
//! assumptions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sim_core::time::Cycles;

use crate::config::CycleCosts;

/// A processing operation with a configured cycle cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Header parsing and metadata setup.
    Parse,
    /// Flow-cache hit lookup.
    ClassifyHit,
    /// Flow-cache miss: filter walk + insert.
    ClassifyMiss,
    /// One atomic meter/counter operation.
    AtomicOp,
    /// One guarded class update (token refill + rate recomputation).
    ClassUpdate,
    /// One lock acquire/release pair (uncontended cost).
    LockOp,
    /// Traffic-manager enqueue descriptor work.
    TxEnqueue,
    /// Base forwarding work common to every packet.
    ForwardBase,
    /// Flattening one admission-chain step at policy (re)compile time —
    /// the control-plane work the compiled scheduling program pays so the
    /// per-packet path does not walk the tree.
    ProgramCompile,
}

impl Op {
    /// Every operation, in [`Op::index`] order.
    pub const ALL: [Op; 9] = [
        Op::Parse,
        Op::ClassifyHit,
        Op::ClassifyMiss,
        Op::AtomicOp,
        Op::ClassUpdate,
        Op::LockOp,
        Op::TxEnqueue,
        Op::ForwardBase,
        Op::ProgramCompile,
    ];

    /// Stable lowercase name (the leaf frame in folded profile stacks).
    pub fn name(&self) -> &'static str {
        match self {
            Op::Parse => "parse",
            Op::ClassifyHit => "classify_hit",
            Op::ClassifyMiss => "classify_miss",
            Op::AtomicOp => "atomic_op",
            Op::ClassUpdate => "class_update",
            Op::LockOp => "lock_op",
            Op::TxEnqueue => "tx_enqueue",
            Op::ForwardBase => "forward_base",
            Op::ProgramCompile => "program_compile",
        }
    }

    fn index(self) -> usize {
        match self {
            Op::Parse => 0,
            Op::ClassifyHit => 1,
            Op::ClassifyMiss => 2,
            Op::AtomicOp => 3,
            Op::ClassUpdate => 4,
            Op::LockOp => 5,
            Op::TxEnqueue => 6,
            Op::ForwardBase => 7,
            Op::ProgramCompile => 8,
        }
    }
}

/// The pipeline phase a charge is attributed to — the middle frame of the
/// `nic;me<worker>;<phase>;<op>` profile stacks. Set on the meter by the
/// component that owns the phase (the NIC for parse/fault/tx-enqueue, the
/// egress decider for classify/sched) and sticky until the next set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrStage {
    /// Header parse + base forwarding work.
    Parse = 0,
    /// The labeling function (flow classification).
    Classify = 1,
    /// The scheduling function (token grabs, guarded updates, locks).
    Sched = 2,
    /// Traffic-manager enqueue descriptor work.
    TxEnqueue = 3,
    /// Extra cycles charged by an injected fault (cpu_burn windows).
    Fault = 4,
    /// Anything charged outside an attributed phase.
    Other = 5,
}

/// All attribution phases, in discriminant order.
pub const ATTR_STAGES: [AttrStage; 6] = [
    AttrStage::Parse,
    AttrStage::Classify,
    AttrStage::Sched,
    AttrStage::TxEnqueue,
    AttrStage::Fault,
    AttrStage::Other,
];

impl AttrStage {
    /// Stable lowercase name (the phase frame in folded stacks).
    pub fn name(&self) -> &'static str {
        match self {
            AttrStage::Parse => "parse",
            AttrStage::Classify => "classify",
            AttrStage::Sched => "sched",
            AttrStage::TxEnqueue => "tx_enqueue",
            AttrStage::Fault => "fault",
            AttrStage::Other => "other",
        }
    }
}

/// Raw `charge_cycles` amounts have no [`Op`]; they get this extra slot.
const RAW_OP: usize = Op::ALL.len();
const OP_SLOTS: usize = RAW_OP + 1;

/// One non-zero cell of a [`CycleAttr`] profile: the cycles (and charge
/// count) one worker spent in one `(phase, op)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrCell {
    /// Micro-engine index.
    pub worker: usize,
    /// Pipeline phase.
    pub stage: AttrStage,
    /// The charged operation, or `None` for raw `charge_cycles` amounts.
    pub op: Option<Op>,
    /// Total cycles charged into this cell.
    pub cycles: u64,
    /// Number of charge operations folded into this cell.
    pub count: u64,
}

impl AttrCell {
    /// The leaf frame name: the op's name, or `"raw"` for untyped charges.
    pub fn op_name(&self) -> &'static str {
        self.op.map(|o| o.name()).unwrap_or("raw")
    }
}

/// A stage × op × worker cycle-attribution array: the weighted call tree
/// behind `fv profile`.
///
/// Attached to a [`CostMeter`] ([`CostMeter::attach_attr`]), every charge
/// folds into the cell addressed by the meter's current attribution
/// context. Cells are relaxed atomics so the array can be shared
/// (`Arc`) between the simulator and the reporting side; under the
/// single-threaded discrete-event simulation the folding order is
/// deterministic, so the same seed yields a byte-identical profile.
pub struct CycleAttr {
    workers: usize,
    cycles: Vec<AtomicU64>,
    counts: Vec<AtomicU64>,
}

impl CycleAttr {
    /// Creates an attribution array for `workers` micro-engines (plus one
    /// overflow row for charges with no worker context).
    pub fn new(workers: usize) -> Self {
        let slots = ATTR_STAGES.len() * OP_SLOTS * (workers + 1);
        CycleAttr {
            workers,
            cycles: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            counts: (0..slots).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of worker rows (excluding the overflow row).
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn slot(&self, stage: usize, op: usize, worker: usize) -> usize {
        let w = worker.min(self.workers);
        (w * ATTR_STAGES.len() + stage) * OP_SLOTS + op
    }

    fn record(&self, stage: usize, op: usize, worker: usize, cycles: u64, n: u64) {
        let i = self.slot(stage, op, worker);
        self.cycles[i].fetch_add(cycles, Ordering::Relaxed);
        self.counts[i].fetch_add(n, Ordering::Relaxed);
    }

    /// Total cycles attributed across all cells.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Every non-zero cell, ordered by `(worker, stage, op)` — a
    /// deterministic order so exports are byte-stable.
    pub fn cells(&self) -> Vec<AttrCell> {
        let mut out = Vec::new();
        for worker in 0..=self.workers {
            for (si, stage) in ATTR_STAGES.iter().enumerate() {
                for op in 0..OP_SLOTS {
                    let i = (worker * ATTR_STAGES.len() + si) * OP_SLOTS + op;
                    let cycles = self.cycles[i].load(Ordering::Relaxed);
                    let count = self.counts[i].load(Ordering::Relaxed);
                    if cycles == 0 && count == 0 {
                        continue;
                    }
                    out.push(AttrCell {
                        worker,
                        stage: *stage,
                        op: Op::ALL.get(op).copied(),
                        cycles,
                        count,
                    });
                }
            }
        }
        out
    }

    /// Clears every cell.
    pub fn reset(&self) {
        for c in &self.cycles {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
    }
}

impl core::fmt::Debug for CycleAttr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CycleAttr")
            .field("workers", &self.workers)
            .field("total_cycles", &self.total_cycles())
            .finish_non_exhaustive()
    }
}

/// Accumulates instruction cycles charged while processing one packet.
///
/// # Example
///
/// ```
/// use np_sim::config::CycleCosts;
/// use np_sim::cost::{CostMeter, Op};
///
/// let mut m = CostMeter::new(CycleCosts::agilio());
/// m.charge(Op::Parse);
/// m.charge_n(Op::AtomicOp, 3);
/// assert_eq!(m.total().get(), 260 + 3 * 40);
/// ```
#[derive(Debug, Clone)]
pub struct CostMeter {
    costs: CycleCosts,
    total: Cycles,
    ops: u64,
    attr: Option<Arc<CycleAttr>>,
    stage: u8,
    worker: u8,
}

impl CostMeter {
    /// Creates a meter with the given cost table.
    pub fn new(costs: CycleCosts) -> Self {
        CostMeter {
            costs,
            total: Cycles::ZERO,
            ops: 0,
            attr: None,
            stage: AttrStage::Other as u8,
            worker: u8::MAX,
        }
    }

    /// Attaches a shared attribution array; subsequent charges fold into
    /// it under the current `(stage, worker)` context.
    pub fn attach_attr(&mut self, attr: Arc<CycleAttr>) {
        self.attr = Some(attr);
    }

    /// Sets the pipeline phase subsequent charges are attributed to.
    /// A plain byte store — free enough to call per packet even when no
    /// attribution array is attached.
    #[inline]
    pub fn set_stage(&mut self, stage: AttrStage) {
        self.stage = stage as u8;
    }

    /// Sets the micro-engine subsequent charges are attributed to.
    #[inline]
    pub fn set_worker(&mut self, worker: usize) {
        self.worker = worker.min(u8::MAX as usize) as u8;
    }

    /// The micro-engine charges are currently attributed to (`u8::MAX`
    /// when no worker context was set). Doubles as the per-worker stripe
    /// hint for striped hot state — striped consumers mask it, so the
    /// no-context sentinel is safe there too.
    #[inline]
    pub fn worker(&self) -> usize {
        self.worker as usize
    }

    fn cost_of(&self, op: Op) -> u64 {
        match op {
            Op::Parse => self.costs.parse,
            Op::ClassifyHit => self.costs.classify_hit,
            Op::ClassifyMiss => self.costs.classify_miss,
            Op::AtomicOp => self.costs.atomic_op,
            Op::ClassUpdate => self.costs.class_update,
            Op::LockOp => self.costs.lock_op,
            Op::TxEnqueue => self.costs.tx_enqueue,
            Op::ForwardBase => self.costs.forward_base,
            Op::ProgramCompile => self.costs.program_compile,
        }
    }

    /// Charges one operation.
    pub fn charge(&mut self, op: Op) {
        self.charge_n(op, 1);
    }

    /// Charges `n` repetitions of an operation.
    pub fn charge_n(&mut self, op: Op, n: u64) {
        let cycles = self.cost_of(op) * n;
        self.total += Cycles::new(cycles);
        self.ops += n;
        if let Some(attr) = &self.attr {
            attr.record(
                self.stage as usize,
                op.index(),
                self.worker as usize,
                cycles,
                n,
            );
        }
    }

    /// Charges a raw cycle amount (for costs not in the table).
    pub fn charge_cycles(&mut self, c: Cycles) {
        self.total += c;
        if c > Cycles::ZERO {
            self.ops += 1;
            if let Some(attr) = &self.attr {
                attr.record(
                    self.stage as usize,
                    RAW_OP,
                    self.worker as usize,
                    c.get(),
                    1,
                );
            }
        }
    }

    /// Total cycles charged so far.
    pub fn total(&self) -> Cycles {
        self.total
    }

    /// Number of charge operations recorded.
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// Resets the meter for the next packet, keeping the cost table.
    pub fn reset(&mut self) {
        self.total = Cycles::ZERO;
        self.ops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut m = CostMeter::new(CycleCosts::agilio());
        m.charge(Op::Parse);
        m.charge(Op::ClassifyHit);
        m.charge(Op::ForwardBase);
        let c = CycleCosts::agilio();
        assert_eq!(m.total().get(), c.parse + c.classify_hit + c.forward_base);
        assert_eq!(m.op_count(), 3);
    }

    #[test]
    fn charge_n_multiplies() {
        let mut m = CostMeter::new(CycleCosts::agilio());
        m.charge_n(Op::ClassUpdate, 4);
        assert_eq!(m.total().get(), 4 * 260);
    }

    #[test]
    fn raw_cycles_and_reset() {
        let mut m = CostMeter::new(CycleCosts::agilio());
        m.charge_cycles(Cycles::new(123));
        assert_eq!(m.total().get(), 123);
        m.reset();
        assert_eq!(m.total(), Cycles::ZERO);
        assert_eq!(m.op_count(), 0);
    }

    #[test]
    fn zero_raw_charge_not_counted_as_op() {
        let mut m = CostMeter::new(CycleCosts::agilio());
        m.charge_cycles(Cycles::ZERO);
        assert_eq!(m.op_count(), 0);
    }

    #[test]
    fn attached_attr_folds_charges_by_stage_op_worker() {
        let attr = Arc::new(CycleAttr::new(4));
        let mut m = CostMeter::new(CycleCosts::agilio());
        m.attach_attr(Arc::clone(&attr));
        m.set_worker(2);
        m.set_stage(AttrStage::Parse);
        m.charge(Op::Parse);
        m.set_stage(AttrStage::Sched);
        m.charge_n(Op::AtomicOp, 3);
        m.charge_cycles(Cycles::new(50));

        let c = CycleCosts::agilio();
        assert_eq!(attr.total_cycles(), c.parse + 3 * c.atomic_op + 50);
        let cells = attr.cells();
        assert_eq!(cells.len(), 3);
        // Deterministic (worker, stage, op) order.
        assert_eq!(cells[0].stage, AttrStage::Parse);
        assert_eq!(cells[0].op, Some(Op::Parse));
        assert_eq!(cells[0].worker, 2);
        assert_eq!(cells[1].op, Some(Op::AtomicOp));
        assert_eq!(cells[1].count, 3);
        assert_eq!(cells[2].op, None);
        assert_eq!(cells[2].op_name(), "raw");
        assert_eq!(cells[2].cycles, 50);

        attr.reset();
        assert_eq!(attr.total_cycles(), 0);
        assert!(attr.cells().is_empty());
    }

    #[test]
    fn charges_without_worker_context_land_in_overflow_row() {
        let attr = Arc::new(CycleAttr::new(2));
        let mut m = CostMeter::new(CycleCosts::agilio());
        m.attach_attr(Arc::clone(&attr));
        m.charge(Op::ForwardBase);
        let cells = attr.cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].worker, 2); // overflow row index == workers()
        assert_eq!(cells[0].stage, AttrStage::Other);
    }

    #[test]
    fn miss_is_much_more_expensive_than_hit() {
        // The paper's Observation 2: the exact-match flow cache accelerates
        // lookups ~10x over the kernel path; our miss/hit ratio reflects it.
        let c = CycleCosts::agilio();
        assert!(c.classify_miss >= 10 * c.classify_hit);
    }
}
