//! Traffic manager: the wire-side FIFO queue and serializer.
//!
//! FlowValve's key abstraction (paper §III-D) is to treat the transmit
//! buffer plus the traffic manager's hardware queues as **one FIFO draining
//! at line rate**, with no per-class queues and no user control over
//! ordering. For a FIFO in front of a fixed-rate serializer, the queue
//! occupancy at any instant is exactly `(wire_free_at − now) × rate`, so the
//! whole traffic manager reduces to a single "next free" timestamp — both
//! faithful and O(1).
//!
//! Tail drop happens when the backlog would exceed the configured byte
//! capacity; this is the *un*-specialized tail drop that FlowValve's
//! early-drop decisions are designed to pre-empt.

use std::sync::Arc;

use fv_telemetry::metrics::{Counter, Gauge};
use fv_telemetry::span::{SpanRecorder, Stage};
use fv_telemetry::trace::{EventRing, TraceKind};
use fv_telemetry::Registry;
use sim_core::time::Nanos;
use sim_core::units::{BitRate, ByteSize, WireFraming};

use crate::fault::{FaultInjector, TmFault};

pub use fv_audit::DropCause;

/// Why the traffic manager refused a packet. Since the drop-cause
/// unification this is the shared [`fv_audit::DropCause`]; the traffic
/// manager only ever produces the [`DropCause::TailDrop`] /
/// [`DropCause::CorruptDrop`] variants.
pub type TmDrop = DropCause;

/// Counters maintained by the FIFO wire model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TmStats {
    /// Packets accepted and serialized.
    pub tx_packets: u64,
    /// Frame bits transmitted (excluding wire framing overhead).
    pub tx_bits: u64,
    /// Packets tail-dropped at the FIFO.
    pub tail_drops: u64,
    /// Packets dropped by an injected corruption fault.
    pub fault_drops: u64,
}

/// A FIFO transmit queue in front of a fixed-rate wire.
///
/// # Example
///
/// ```
/// use np_sim::tm::TxFifo;
/// use sim_core::time::Nanos;
/// use sim_core::units::{BitRate, ByteSize, WireFraming};
///
/// let mut fifo = TxFifo::new(
///     BitRate::from_gbps(10.0),
///     WireFraming::ETHERNET,
///     ByteSize::from_kib(64),
/// );
/// let done = fifo.enqueue(1518, Nanos::ZERO).expect("queue is empty");
/// // (1518 + 20) bytes at 10 Gbps ≈ 1.23 us.
/// assert_eq!(done.as_nanos(), 1_231);
/// ```
/// Registry-backed mirrors of [`TmStats`] plus FIFO occupancy and
/// `TailDrop` trace events.
#[derive(Debug, Clone)]
struct FifoTelemetry {
    tx_packets: Arc<Counter>,
    tx_bits: Arc<Counter>,
    tail_drops: Arc<Counter>,
    fault_drops: Arc<Counter>,
    backlog_bytes: Arc<Gauge>,
    ring: Arc<EventRing>,
    spans: SpanRecorder,
}

#[derive(Debug, Clone)]
pub struct TxFifo {
    rate: BitRate,
    framing: WireFraming,
    /// Maximum backlog expressed as drain time (capacity / rate).
    max_backlog: Nanos,
    /// When the wire finishes everything currently queued.
    free_at: Nanos,
    /// Latest enqueue timestamp seen, to keep internal time monotonic.
    last_t: Nanos,
    stats: TmStats,
    telemetry: Option<FifoTelemetry>,
    injector: Option<Arc<dyn FaultInjector>>,
}

impl TxFifo {
    /// Creates a FIFO draining at `rate` with `capacity` bytes of buffer.
    ///
    /// # Panics
    ///
    /// Panics if `rate` or `capacity` is zero.
    pub fn new(rate: BitRate, framing: WireFraming, capacity: ByteSize) -> Self {
        assert!(rate > BitRate::ZERO, "wire rate must be positive");
        assert!(capacity > ByteSize::ZERO, "capacity must be positive");
        TxFifo {
            rate,
            framing,
            max_backlog: rate.serialization_time(capacity.as_bits()),
            free_at: Nanos::ZERO,
            last_t: Nanos::ZERO,
            stats: TmStats::default(),
            telemetry: None,
            injector: None,
        }
    }

    /// Installs a fault injector consulted on every enqueue (wire-rate
    /// degradation, serializer pauses, corruption drops).
    pub fn set_fault_injector(&mut self, injector: Arc<dyn FaultInjector>) {
        self.injector = Some(injector);
    }

    /// Mirrors every enqueue into `registry` under the `tm.fifo.*`
    /// namespace: the [`TmStats`] counters, an occupancy gauge (whose
    /// high-water mark survives drains), `TailDrop` trace events, and —
    /// for packets offered via [`TxFifo::enqueue_pkt`] — per-packet
    /// `tm_queue`/`wire` stage spans.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = Some(FifoTelemetry {
            tx_packets: registry.counter("tm.fifo.tx_packets"),
            tx_bits: registry.counter("tm.fifo.tx_bits"),
            tail_drops: registry.counter("tm.fifo.tail_drops"),
            // Detached until a fault injector exists: fault-free runs keep
            // their snapshot schema free of fault counters.
            fault_drops: Arc::new(Counter::new()),
            backlog_bytes: registry.gauge("tm.fifo.backlog_bytes"),
            ring: registry.ring(),
            spans: SpanRecorder::new(registry),
        });
    }

    /// Registers the corruption-drop counter as `tm.fifo.fault_drops`.
    ///
    /// Deliberately separate from [`TxFifo::attach_telemetry`]: fault
    /// drops require an injector, so a fault-free run never grows its
    /// snapshot schema. Call alongside [`TxFifo::set_fault_injector`];
    /// a no-op until telemetry is attached.
    pub fn attach_fault_telemetry(&mut self, registry: &Registry) {
        if let Some(tel) = &mut self.telemetry {
            tel.fault_drops = registry.counter("tm.fifo.fault_drops");
        }
    }

    /// Offers a frame of `frame_len` bytes to the FIFO at time `t`.
    ///
    /// On success, returns the instant the frame's last bit leaves the wire.
    /// Slightly out-of-order timestamps (from parallel workers completing
    /// out of order) are clamped to the last seen time, mirroring the
    /// reorder system's behaviour at the transmit ring.
    ///
    /// # Errors
    ///
    /// [`TmDrop::TailDrop`] when the backlog would exceed capacity.
    pub fn enqueue(&mut self, frame_len: u32, t: Nanos) -> Result<Nanos, TmDrop> {
        self.enqueue_pkt(frame_len, t, u64::MAX)
    }

    /// [`TxFifo::enqueue`] with the packet's id threaded through so the
    /// FIFO wait (`tm_queue`) and serialization (`wire`) spans carry it.
    /// Callers without an id (`enqueue`) stamp `u64::MAX`.
    ///
    /// # Errors
    ///
    /// [`TmDrop::TailDrop`] when the backlog would exceed capacity.
    pub fn enqueue_pkt(&mut self, frame_len: u32, t: Nanos, pkt_id: u64) -> Result<Nanos, TmDrop> {
        let t = t.max(self.last_t);
        self.last_t = t;
        let mut paused_until = Nanos::ZERO;
        if let Some(inj) = &self.injector {
            match inj.tm_fault(t, pkt_id) {
                TmFault::None => {}
                TmFault::Paused { until } => paused_until = until,
                TmFault::CorruptDrop => {
                    self.stats.fault_drops += 1;
                    if let Some(tel) = &self.telemetry {
                        tel.fault_drops.incr(0);
                    }
                    return Err(TmDrop::CorruptDrop);
                }
            }
        }
        let backlog = self.free_at.saturating_sub(t);
        if backlog > self.max_backlog {
            self.stats.tail_drops += 1;
            if let Some(tel) = &self.telemetry {
                tel.tail_drops.incr(0);
                tel.ring.record(
                    t,
                    TraceKind::TailDrop,
                    frame_len as u64,
                    self.rate.bits_in(backlog) / 8,
                );
            }
            return Err(TmDrop::TailDrop);
        }
        let mut ser = self.framing.serialization_time(self.rate, frame_len as u64);
        if let Some(inj) = &self.injector {
            let permille = inj.wire_rate_permille(t).max(1);
            if permille != 1000 {
                // A degraded wire stretches serialization proportionally.
                ser = Nanos::from_nanos(ser.as_nanos().saturating_mul(1000) / permille);
            }
        }
        let wire_start = self.free_at.max(t).max(paused_until);
        self.free_at = wire_start + ser;
        self.stats.tx_packets += 1;
        self.stats.tx_bits += frame_len as u64 * 8;
        if let Some(tel) = &self.telemetry {
            tel.tx_packets.incr(0);
            tel.tx_bits.add(0, frame_len as u64 * 8);
            let occupancy = self.rate.bits_in(self.free_at - t) / 8;
            tel.backlog_bytes.set(occupancy);
            tel.spans.record(Stage::TmQueue, t, pkt_id, wire_start - t);
            tel.spans.record(Stage::Wire, wire_start, pkt_id, ser);
        }
        Ok(self.free_at)
    }

    /// Current queue backlog in bytes at time `t`.
    pub fn backlog_bytes(&self, t: Nanos) -> u64 {
        let backlog = self.free_at.saturating_sub(t.max(self.last_t));
        self.rate.bits_in(backlog) / 8
    }

    /// Queueing delay a frame enqueued at `t` would experience before its
    /// first bit hits the wire.
    pub fn queueing_delay(&self, t: Nanos) -> Nanos {
        self.free_at.saturating_sub(t.max(self.last_t))
    }

    /// The configured wire rate.
    pub fn rate(&self) -> BitRate {
        self.rate
    }

    /// Accumulated counters.
    pub fn stats(&self) -> TmStats {
        self.stats
    }

    /// Achieved throughput over `[0, horizon]` (frame bits, no framing).
    pub fn throughput(&self, horizon: Nanos) -> BitRate {
        if horizon == Nanos::ZERO {
            return BitRate::ZERO;
        }
        BitRate::from_bps(
            (self.stats.tx_bits as u128 * 1_000_000_000u128 / horizon.as_nanos() as u128) as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fifo_1g() -> TxFifo {
        // 1 Gbps, no framing overhead, 10 KB buffer => 80 us max backlog.
        TxFifo::new(
            BitRate::from_bps(1_000_000_000),
            WireFraming::NONE,
            ByteSize::from_bytes(10_000),
        )
    }

    #[test]
    fn empty_fifo_serializes_immediately() {
        let mut f = fifo_1g();
        // 1000 bytes = 8000 bits at 1 bit/ns.
        let done = f.enqueue(1_000, Nanos::ZERO).unwrap();
        assert_eq!(done, Nanos::from_nanos(8_000));
    }

    #[test]
    fn backlog_accumulates_fifo_order() {
        let mut f = fifo_1g();
        let d1 = f.enqueue(1_000, Nanos::ZERO).unwrap();
        let d2 = f.enqueue(1_000, Nanos::ZERO).unwrap();
        assert_eq!(d2, d1 + Nanos::from_nanos(8_000));
        assert_eq!(f.backlog_bytes(Nanos::ZERO), 2_000);
    }

    #[test]
    fn wire_drains_over_time() {
        let mut f = fifo_1g();
        f.enqueue(1_000, Nanos::ZERO).unwrap();
        assert_eq!(f.backlog_bytes(Nanos::from_nanos(4_000)), 500);
        assert_eq!(f.backlog_bytes(Nanos::from_nanos(8_000)), 0);
    }

    #[test]
    fn tail_drop_when_full() {
        let mut f = fifo_1g();
        // Fill past 10 KB: each enqueue is 1 KB; at t=0, 11th packet sees
        // 80 us backlog == max => allowed; 12th sees 88 us > 80 us => drop.
        let mut accepted = 0;
        for _ in 0..12 {
            if f.enqueue(1_000, Nanos::ZERO).is_ok() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 11);
        assert_eq!(f.stats().tail_drops, 1);
    }

    #[test]
    fn out_of_order_timestamps_clamped() {
        let mut f = fifo_1g();
        f.enqueue(1_000, Nanos::from_nanos(100)).unwrap();
        // Enqueue "at 50 ns" after one at 100 ns: treated as 100 ns.
        let done = f.enqueue(1_000, Nanos::from_nanos(50)).unwrap();
        assert_eq!(done, Nanos::from_nanos(100 + 16_000));
    }

    #[test]
    fn framing_overhead_charged_on_wire_only() {
        let mut f = TxFifo::new(
            BitRate::from_bps(1_000_000_000),
            WireFraming::ETHERNET,
            ByteSize::from_kib(64),
        );
        let done = f.enqueue(64, Nanos::ZERO).unwrap();
        // (64 + 20) * 8 = 672 ns on the wire...
        assert_eq!(done, Nanos::from_nanos(672));
        // ...but only 512 frame bits counted as throughput.
        assert_eq!(f.stats().tx_bits, 512);
    }

    #[test]
    fn throughput_accounting() {
        let mut f = fifo_1g();
        for i in 0..10u64 {
            let _ = f.enqueue(1_000, Nanos::from_micros(i * 10));
        }
        let tput = f.throughput(Nanos::from_micros(100));
        // 80_000 bits over 100 us = 800 Mbps.
        assert_eq!(tput, BitRate::from_mbps(800));
        assert_eq!(f.throughput(Nanos::ZERO), BitRate::ZERO);
    }

    #[test]
    fn telemetry_mirrors_fifo_stats() {
        use fv_telemetry::MetricValue;
        let reg = Registry::new();
        let mut f = fifo_1g();
        f.attach_telemetry(&reg);
        // 10 KB buffer, 1 KB frames: 11 accepted, the 12th tail-drops.
        for _ in 0..12 {
            let _ = f.enqueue(1_000, Nanos::ZERO);
        }
        let snap = reg.snapshot(Nanos::ZERO);
        assert_eq!(snap.counter("tm.fifo.tx_packets"), 11);
        assert_eq!(snap.counter("tm.fifo.tx_bits"), 11 * 8_000);
        assert_eq!(snap.counter("tm.fifo.tail_drops"), 1);
        match snap.get("tm.fifo.backlog_bytes") {
            Some(MetricValue::Gauge { max, .. }) => assert_eq!(*max, 11_000),
            other => panic!("unexpected {other:?}"),
        }
        assert!(snap
            .events
            .iter()
            .any(|e| e.kind == TraceKind::TailDrop && e.a == 1_000));
    }

    #[derive(Debug)]
    struct FaultAt {
        from: Nanos,
        to: Nanos,
        fault: TmFault,
        permille: u64,
    }

    impl FaultInjector for FaultAt {
        fn wire_rate_permille(&self, now: Nanos) -> u64 {
            if now >= self.from && now < self.to {
                self.permille
            } else {
                1000
            }
        }
        fn tm_fault(&self, now: Nanos, _pkt_id: u64) -> TmFault {
            if now >= self.from && now < self.to {
                self.fault
            } else {
                TmFault::None
            }
        }
    }

    #[test]
    fn degraded_wire_stretches_serialization() {
        let mut f = fifo_1g();
        f.set_fault_injector(Arc::new(FaultAt {
            from: Nanos::ZERO,
            to: Nanos::from_micros(1),
            fault: TmFault::None,
            permille: 250,
        }));
        // 8000 bits at a quarter of 1 Gbps take 4x as long.
        let done = f.enqueue(1_000, Nanos::ZERO).unwrap();
        assert_eq!(done, Nanos::from_nanos(32_000));
        // Outside the window the wire is back to nominal.
        let done = f.enqueue(1_000, Nanos::from_micros(40)).unwrap();
        assert_eq!(done, Nanos::from_nanos(48_000));
    }

    #[test]
    fn paused_serializer_defers_wire_start() {
        let mut f = fifo_1g();
        let until = Nanos::from_micros(10);
        f.set_fault_injector(Arc::new(FaultAt {
            from: Nanos::ZERO,
            to: Nanos::from_micros(1),
            fault: TmFault::Paused { until },
            permille: 1000,
        }));
        let done = f.enqueue(1_000, Nanos::ZERO).unwrap();
        assert_eq!(done, until + Nanos::from_nanos(8_000));
    }

    #[test]
    fn corruption_fault_drops_and_counts() {
        let reg = Registry::new();
        let mut f = fifo_1g();
        f.attach_telemetry(&reg);
        f.attach_fault_telemetry(&reg);
        f.set_fault_injector(Arc::new(FaultAt {
            from: Nanos::ZERO,
            to: Nanos::from_micros(1),
            fault: TmFault::CorruptDrop,
            permille: 1000,
        }));
        assert_eq!(f.enqueue(1_000, Nanos::ZERO), Err(TmDrop::CorruptDrop));
        assert!(f.enqueue(1_000, Nanos::from_micros(5)).is_ok());
        assert_eq!(f.stats().fault_drops, 1);
        assert_eq!(f.stats().tx_packets, 1);
        let snap = reg.snapshot(Nanos::ZERO);
        assert_eq!(snap.counter("tm.fifo.fault_drops"), 1);
    }

    #[test]
    fn queueing_delay_reported() {
        let mut f = fifo_1g();
        assert_eq!(f.queueing_delay(Nanos::ZERO), Nanos::ZERO);
        f.enqueue(1_000, Nanos::ZERO).unwrap();
        assert_eq!(f.queueing_delay(Nanos::ZERO), Nanos::from_nanos(8_000));
    }
}
