//! Open-loop NIC driver for stress experiments.
//!
//! Figure 13 measures maximum packet throughput under full-speed fixed-size
//! injection; Figure 14 measures one-way delay at controlled load. Both are
//! open-loop (the sender ignores feedback), so no global event queue is
//! needed: each traffic source emits a deterministic arrival schedule, the
//! harness merges them in time order and feeds the NIC.

use netstack::flow::FlowKey;
use netstack::gen::ArrivalProcess;
use netstack::packet::{AppId, Packet, PacketIdGen, VfPort};
use sim_core::rng::SimRng;
use sim_core::stats::Histogram;
use sim_core::time::Nanos;
use sim_core::units::BitRate;

use crate::nic::{NicStats, RxOutcome, SmartNic};

/// One open-loop traffic source.
pub struct Source {
    /// The flow its packets belong to.
    pub flow: FlowKey,
    /// Application id for accounting.
    pub app: AppId,
    /// Virtual function the packets enter through.
    pub vf: VfPort,
    /// Arrival process generating the schedule.
    pub process: Box<dyn ArrivalProcess>,
}

impl core::fmt::Debug for Source {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Source")
            .field("flow", &self.flow)
            .field("app", &self.app)
            .field("vf", &self.vf)
            .finish_non_exhaustive()
    }
}

/// Results of an open-loop run.
#[derive(Debug)]
pub struct OpenLoopReport {
    /// Simulated duration.
    pub horizon: Nanos,
    /// NIC counters at the end of the run.
    pub nic: NicStats,
    /// Packets whose last bit left the wire within the horizon.
    pub wire_packets: u64,
    /// Transmitted packets per second (wire-completed only, so a deep
    /// transmit backlog cannot inflate the rate past line rate).
    pub tx_pps: f64,
    /// Achieved frame-bit throughput (wire-completed only).
    pub throughput: BitRate,
    /// One-way delay (creation to delivery) of transmitted packets.
    pub delay: Histogram,
    /// Per-app transmitted bits.
    pub per_app_bits: Vec<(AppId, u64)>,
}

impl OpenLoopReport {
    /// Transmitted bits for one app (zero if absent).
    pub fn app_bits(&self, app: AppId) -> u64 {
        self.per_app_bits
            .iter()
            .find(|(a, _)| *a == app)
            .map(|&(_, b)| b)
            .unwrap_or(0)
    }
}

/// Runs `sources` against `nic` for `horizon` of simulated time.
///
/// Returns the throughput/delay report. Sources are merged in timestamp
/// order with deterministic tie-breaking by source index.
///
/// # Example
///
/// ```
/// use netstack::flow::FlowKey;
/// use netstack::gen::CbrProcess;
/// use netstack::packet::{AppId, VfPort};
/// use np_sim::config::NicConfig;
/// use np_sim::harness::{run_open_loop, Source};
/// use np_sim::nic::{PassthroughDecider, SmartNic};
/// use sim_core::time::Nanos;
/// use sim_core::units::BitRate;
///
/// let mut nic = SmartNic::new(NicConfig::agilio_cx_40g(), Box::new(PassthroughDecider));
/// let sources = vec![Source {
///     flow: FlowKey::udp([10, 0, 0, 1], 9000, [10, 0, 0, 2], 9000),
///     app: AppId(0),
///     vf: VfPort(0),
///     process: Box::new(CbrProcess::new(BitRate::from_gbps(1.0), 1250)),
/// }];
/// let report = run_open_loop(&mut nic, sources, Nanos::from_millis(1), 42);
/// assert!((report.throughput.as_gbps() - 1.0).abs() < 0.05);
/// ```
pub fn run_open_loop(
    nic: &mut SmartNic,
    sources: Vec<Source>,
    horizon: Nanos,
    seed: u64,
) -> OpenLoopReport {
    let mut rng = SimRng::seed(seed);
    let mut ids = PacketIdGen::new();
    let mut delay = Histogram::new_latency_ns();
    let mut per_app: Vec<(AppId, u64)> = Vec::new();
    let mut wire_packets = 0u64;
    let mut wire_bits = 0u64;

    // Next pending arrival per source.
    let mut sources = sources;
    let mut next: Vec<Option<(Nanos, u32)>> = sources
        .iter_mut()
        .map(|s| {
            let (gap, len) = s.process.next_arrival(&mut rng);
            Some((Nanos::ZERO + gap, len))
        })
        .collect();

    // Clippy suggests `while let`, but the binding pattern (enumerate +
    // filter + min) reads better with an explicit breakout.
    #[allow(clippy::while_let_loop)]
    loop {
        // Earliest pending arrival across sources (stable by index).
        let Some((idx, (t, len))) = next
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.map(|v| (i, v)))
            .min_by_key(|&(i, (t, _))| (t, i))
        else {
            break;
        };
        if t >= horizon {
            break;
        }

        let src = &mut sources[idx];
        let pkt = Packet::new(ids.next_id(), src.flow, len, src.app, src.vf, t);
        if let RxOutcome::Transmit {
            delivered,
            wire_done,
        } = nic.rx(&pkt, t)
        {
            delay.record((delivered - t).as_nanos());
            if wire_done <= horizon {
                wire_packets += 1;
                wire_bits += pkt.frame_bits();
                match per_app.iter_mut().find(|(a, _)| *a == src.app) {
                    Some((_, bits)) => *bits += pkt.frame_bits(),
                    None => per_app.push((src.app, pkt.frame_bits())),
                }
            }
        }

        let (gap, len) = src.process.next_arrival(&mut rng);
        next[idx] = Some((t + gap, len));
    }

    let nic_stats = nic.stats();
    OpenLoopReport {
        horizon,
        nic: nic_stats,
        wire_packets,
        tx_pps: wire_packets as f64 / horizon.as_secs_f64(),
        throughput: BitRate::from_bps(
            (wire_bits as u128 * 1_000_000_000u128 / horizon.as_nanos() as u128) as u64,
        ),
        delay,
        per_app_bits: per_app,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NicConfig;
    use crate::nic::PassthroughDecider;
    use netstack::gen::{CbrProcess, LineRateProcess};
    use sim_core::units::WireFraming;

    fn cbr_source(app: u16, gbps: f64, len: u32) -> Source {
        Source {
            flow: FlowKey::udp([10, 0, 0, 1], 9000 + app, [10, 0, 0, 2], 9000),
            app: AppId(app),
            vf: VfPort(app as u8),
            process: Box::new(CbrProcess::new(BitRate::from_gbps(gbps), len)),
        }
    }

    #[test]
    fn undersubscribed_cbr_passes_cleanly() {
        let mut nic = SmartNic::new(NicConfig::agilio_cx_40g(), Box::new(PassthroughDecider));
        let report = run_open_loop(
            &mut nic,
            vec![cbr_source(0, 5.0, 1250), cbr_source(1, 5.0, 1250)],
            Nanos::from_millis(2),
            1,
        );
        assert_eq!(report.nic.rx_drops + report.nic.tail_drops, 0);
        assert!((report.throughput.as_gbps() - 10.0).abs() < 0.2);
        assert!(report.app_bits(AppId(0)) > 0);
        assert!(report.app_bits(AppId(1)) > 0);
        assert_eq!(report.app_bits(AppId(9)), 0);
    }

    #[test]
    fn line_rate_64b_is_compute_bound_near_20mpps() {
        // The Figure 13 headline: 64 B full-speed injection lands around
        // 20 Mpps on the calibrated profile, far below the 59.5 Mpps wire limit.
        let cfg = NicConfig::agilio_cx_40g();
        let mut nic = SmartNic::new(cfg.clone(), Box::new(PassthroughDecider));
        let report = run_open_loop(
            &mut nic,
            vec![Source {
                flow: FlowKey::udp([10, 0, 0, 1], 9000, [10, 0, 0, 2], 9000),
                app: AppId(0),
                vf: VfPort(0),
                process: Box::new(LineRateProcess::new(
                    cfg.line_rate,
                    64,
                    WireFraming::ETHERNET,
                )),
            }],
            Nanos::from_millis(1),
            2,
        );
        let mpps = report.tx_pps / 1e6;
        // Passthrough charges parse+forward+tx ≈ 820 cycles => ~48 Mpps
        // compute bound; with scheduling it drops to ~20 (tested in
        // flowvalve). Here we only assert the NIC sheds load sanely.
        assert!(mpps > 10.0 && mpps < 59.0, "mpps {mpps}");
        assert!(report.nic.rx_drops > 0);
    }

    #[test]
    fn delay_includes_pipeline_latency() {
        let cfg = NicConfig::agilio_cx_40g();
        let base = cfg.base_pipeline_latency;
        let mut nic = SmartNic::new(cfg, Box::new(PassthroughDecider));
        let report = run_open_loop(
            &mut nic,
            vec![cbr_source(0, 1.0, 1250)],
            Nanos::from_millis(1),
            3,
        );
        assert!(report.delay.count() > 0);
        assert!(report.delay.mean() >= base.as_nanos() as f64);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut nic = SmartNic::new(NicConfig::agilio_cx_40g(), Box::new(PassthroughDecider));
            run_open_loop(
                &mut nic,
                vec![cbr_source(0, 20.0, 800), cbr_source(1, 30.0, 800)],
                Nanos::from_millis(1),
                seed,
            )
            .nic
        };
        assert_eq!(run(7), run(7));
    }
}
