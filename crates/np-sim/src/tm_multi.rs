//! The *inflexible* NIC traffic manager (paper §II-B): multiple FIFO
//! queues served by a fixed scheme — strict priorities between levels,
//! weighted round-robin within a level — with no runtime reconfiguration.
//!
//! This is the on-NIC queueing system FlowValve refuses to rely on: it can
//! express per-queue fairness and static priorities, but *conditional*
//! policies ("give ML 2 Gbps only when the total exceeds 4 Gbps",
//! "NC's residual goes to S1") need runtime rate recomputation that a
//! fixed scheme cannot do. The `ablation_nic_scheduler` bench demonstrates
//! exactly that failure.

use std::collections::VecDeque;
use std::sync::Arc;

use fv_telemetry::metrics::{Counter, Gauge};
use fv_telemetry::trace::{EventRing, TraceKind};
use fv_telemetry::Registry;
use netstack::packet::Packet;
use sim_core::time::Nanos;
use sim_core::units::{BitRate, WireFraming};

/// Static configuration of one hardware queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwQueueConfig {
    /// Strict priority level (lower served first).
    pub prio: u8,
    /// WRR weight within the priority level.
    pub weight: u32,
    /// Queue capacity in packets.
    pub capacity: usize,
}

impl Default for HwQueueConfig {
    fn default() -> Self {
        HwQueueConfig {
            prio: 0,
            weight: 1,
            capacity: 512,
        }
    }
}

struct HwQueue {
    cfg: HwQueueConfig,
    queue: VecDeque<Packet>,
    /// WRR deficit in bytes.
    deficit: i64,
    drops: u64,
}

/// A fixed-function multi-queue traffic manager in front of a wire.
///
/// # Example
///
/// ```
/// use netstack::flow::FlowKey;
/// use netstack::packet::{AppId, Packet, VfPort};
/// use np_sim::tm_multi::{HwQueueConfig, MultiQueueTm};
/// use sim_core::time::Nanos;
/// use sim_core::units::{BitRate, WireFraming};
///
/// let mut tm = MultiQueueTm::new(
///     BitRate::from_gbps(10.0),
///     WireFraming::ETHERNET,
///     vec![
///         HwQueueConfig { prio: 0, ..Default::default() }, // latency queue
///         HwQueueConfig { prio: 1, ..Default::default() }, // bulk queue
///     ],
/// );
/// let flow = FlowKey::tcp([10, 0, 0, 1], 1, [10, 0, 0, 2], 2);
/// tm.enqueue(1, Packet::new(0, flow, 1518, AppId(0), VfPort(0), Nanos::ZERO));
/// tm.enqueue(0, Packet::new(1, flow, 64, AppId(1), VfPort(0), Nanos::ZERO));
/// // Strict priority: queue 0 dequeues first.
/// assert_eq!(tm.dequeue(Nanos::ZERO).map(|(p, _)| p.id), Some(1));
/// ```
/// Registry-backed mirrors of the traffic-manager counters: per-queue tail
/// drops, aggregate transmit counters, occupancy, and `TailDrop` events.
struct MqTelemetry {
    tx_packets: Arc<Counter>,
    tx_bits: Arc<Counter>,
    queue_drops: Vec<Arc<Counter>>,
    backlog_pkts: Arc<Gauge>,
    ring: Arc<EventRing>,
}

pub struct MultiQueueTm {
    queues: Vec<HwQueue>,
    rate: BitRate,
    framing: WireFraming,
    wire_free: Nanos,
    rr_cursor: usize,
    tx_packets: u64,
    tx_bits: u64,
    telemetry: Option<MqTelemetry>,
}

impl core::fmt::Debug for MultiQueueTm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MultiQueueTm")
            .field("queues", &self.queues.len())
            .field("tx_packets", &self.tx_packets)
            .finish_non_exhaustive()
    }
}

impl MultiQueueTm {
    /// Creates a traffic manager with the given fixed queue scheme.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is empty or `rate` is zero.
    pub fn new(rate: BitRate, framing: WireFraming, queues: Vec<HwQueueConfig>) -> Self {
        assert!(!queues.is_empty(), "need at least one queue");
        assert!(rate > BitRate::ZERO, "wire rate must be positive");
        MultiQueueTm {
            queues: queues
                .into_iter()
                .map(|cfg| HwQueue {
                    cfg,
                    queue: VecDeque::new(),
                    deficit: 0,
                    drops: 0,
                })
                .collect(),
            rate,
            framing,
            wire_free: Nanos::ZERO,
            rr_cursor: 0,
            tx_packets: 0,
            tx_bits: 0,
            telemetry: None,
        }
    }

    /// Mirrors enqueue/dequeue activity into `registry` under the `tm.mq.*`
    /// namespace: aggregate transmit counters, per-queue tail-drop counters
    /// (`tm.mq.q<i>.drops`), a backlog gauge, and `TailDrop` trace events.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = Some(MqTelemetry {
            tx_packets: registry.counter("tm.mq.tx_packets"),
            tx_bits: registry.counter("tm.mq.tx_bits"),
            queue_drops: (0..self.queues.len())
                .map(|i| registry.counter(&format!("tm.mq.q{i}.drops")))
                .collect(),
            backlog_pkts: registry.gauge("tm.mq.backlog_pkts"),
            ring: registry.ring(),
        });
    }

    /// Number of queues.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Offers a packet to queue `q`; returns whether it was accepted
    /// (tail drop otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn enqueue(&mut self, q: usize, pkt: Packet) -> bool {
        let hq = &mut self.queues[q];
        if hq.queue.len() >= hq.cfg.capacity {
            hq.drops += 1;
            if let Some(t) = &self.telemetry {
                t.queue_drops[q].incr(0);
                t.ring
                    .record(pkt.created_at, TraceKind::TailDrop, q as u64, pkt.id);
            }
            false
        } else {
            hq.queue.push_back(pkt);
            if let Some(t) = &self.telemetry {
                t.backlog_pkts
                    .set(self.queues.iter().map(|hw| hw.queue.len() as u64).sum());
            }
            true
        }
    }

    /// Dequeues per the fixed scheme at `now`, returning the packet and
    /// its wire-completion time. Returns `None` when every queue is empty
    /// or the wire is still busy at `now`.
    pub fn dequeue(&mut self, now: Nanos) -> Option<(Packet, Nanos)> {
        if self.wire_free > now {
            return None;
        }
        // Highest-priority non-empty level.
        let best_prio = self
            .queues
            .iter()
            .filter(|q| !q.queue.is_empty())
            .map(|q| q.cfg.prio)
            .min()?;
        let candidates: Vec<usize> = (0..self.queues.len())
            .filter(|&i| self.queues[i].cfg.prio == best_prio && !self.queues[i].queue.is_empty())
            .collect();
        // WRR within the level: quantum = weight × MTU.
        let n = candidates.len();
        for pass in 0..2 {
            for k in 0..n {
                let i = candidates[(self.rr_cursor + k) % n];
                let head_len = self.queues[i]
                    .queue
                    .front()
                    .map(|p| p.frame_len as i64)
                    .expect("candidate is non-empty");
                if self.queues[i].deficit >= head_len {
                    self.queues[i].deficit -= head_len;
                    self.rr_cursor = (self.rr_cursor + k) % n;
                    let pkt = self.queues[i].queue.pop_front().expect("non-empty");
                    let start = self.wire_free.max(now);
                    self.wire_free = start
                        + self
                            .framing
                            .serialization_time(self.rate, pkt.frame_len as u64);
                    self.tx_packets += 1;
                    self.tx_bits += pkt.frame_bits();
                    if let Some(t) = &self.telemetry {
                        t.tx_packets.incr(0);
                        t.tx_bits.add(0, pkt.frame_bits());
                        t.backlog_pkts
                            .set(self.queues.iter().map(|hw| hw.queue.len() as u64).sum());
                    }
                    return Some((pkt, self.wire_free));
                }
                if pass == 0 {
                    self.queues[i].deficit += (self.queues[i].cfg.weight as i64) * 1_518;
                }
            }
        }
        unreachable!("WRR quantum covers at least one MTU");
    }

    /// Packets transmitted so far.
    pub fn tx_packets(&self) -> u64 {
        self.tx_packets
    }

    /// Frame bits transmitted so far.
    pub fn tx_bits(&self) -> u64 {
        self.tx_bits
    }

    /// Tail drops of queue `q`.
    pub fn drops(&self, q: usize) -> u64 {
        self.queues[q].drops
    }

    /// Total queued packets.
    pub fn backlog_pkts(&self) -> usize {
        self.queues.iter().map(|q| q.queue.len()).sum()
    }

    /// When the wire next frees up.
    pub fn wire_free_at(&self) -> Nanos {
        self.wire_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::flow::FlowKey;
    use netstack::packet::{AppId, VfPort};

    fn pkt(id: u64, app: u16, len: u32) -> Packet {
        let flow = FlowKey::tcp([10, 0, 0, 1], 1000 + app, [10, 0, 0, 2], 80);
        Packet::new(id, flow, len, AppId(app), VfPort(0), Nanos::ZERO)
    }

    fn drain_all(tm: &mut MultiQueueTm) -> Vec<u64> {
        let mut out = Vec::new();
        let mut now = Nanos::ZERO;
        while let Some((p, done)) = tm.dequeue(now) {
            out.push(p.id);
            now = done;
        }
        out
    }

    #[test]
    fn strict_priority_between_levels() {
        let mut tm = MultiQueueTm::new(
            BitRate::from_gbps(10.0),
            WireFraming::ETHERNET,
            vec![
                HwQueueConfig {
                    prio: 0,
                    ..Default::default()
                },
                HwQueueConfig {
                    prio: 1,
                    ..Default::default()
                },
            ],
        );
        tm.enqueue(1, pkt(0, 1, 1518));
        tm.enqueue(1, pkt(1, 1, 1518));
        tm.enqueue(0, pkt(2, 0, 64));
        let order = drain_all(&mut tm);
        assert_eq!(order[0], 2, "priority queue not served first");
    }

    #[test]
    fn wrr_within_a_level_follows_weights() {
        let mut tm = MultiQueueTm::new(
            BitRate::from_gbps(10.0),
            WireFraming::ETHERNET,
            vec![
                HwQueueConfig {
                    prio: 0,
                    weight: 3,
                    capacity: 4_096,
                },
                HwQueueConfig {
                    prio: 0,
                    weight: 1,
                    capacity: 4_096,
                },
            ],
        );
        for i in 0..2_000u64 {
            tm.enqueue((i % 2) as usize, pkt(i, (i % 2) as u16, 1_518));
        }
        let mut counts = [0u64; 2];
        let mut now = Nanos::ZERO;
        for _ in 0..1_000 {
            let (p, done) = tm.dequeue(now).expect("backlogged");
            counts[p.app.0 as usize] += 1;
            now = done;
        }
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((2.4..3.6).contains(&ratio), "WRR ratio {ratio}, want ~3");
    }

    #[test]
    fn wire_paces_dequeues() {
        let mut tm = MultiQueueTm::new(
            BitRate::from_gbps(10.0),
            WireFraming::NONE,
            vec![HwQueueConfig::default()],
        );
        tm.enqueue(0, pkt(0, 0, 1_250));
        tm.enqueue(0, pkt(1, 0, 1_250));
        let (_, done) = tm.dequeue(Nanos::ZERO).expect("queued");
        // Wire busy until `done`: a dequeue before that returns None.
        assert!(tm.dequeue(done - Nanos::from_nanos(1)).is_none());
        assert!(tm.dequeue(done).is_some());
    }

    #[test]
    fn tail_drop_when_queue_full() {
        let mut tm = MultiQueueTm::new(
            BitRate::from_gbps(10.0),
            WireFraming::ETHERNET,
            vec![HwQueueConfig {
                capacity: 1,
                ..Default::default()
            }],
        );
        assert!(tm.enqueue(0, pkt(0, 0, 64)));
        assert!(!tm.enqueue(0, pkt(1, 0, 64)));
        assert_eq!(tm.drops(0), 1);
        assert_eq!(tm.backlog_pkts(), 1);
    }

    #[test]
    fn telemetry_tracks_per_queue_drops_and_occupancy() {
        use fv_telemetry::MetricValue;
        let reg = Registry::new();
        let mut tm = MultiQueueTm::new(
            BitRate::from_gbps(10.0),
            WireFraming::ETHERNET,
            vec![
                HwQueueConfig {
                    capacity: 1,
                    ..Default::default()
                },
                HwQueueConfig {
                    capacity: 8,
                    ..Default::default()
                },
            ],
        );
        tm.attach_telemetry(&reg);
        assert!(tm.enqueue(0, pkt(0, 0, 64)));
        assert!(!tm.enqueue(0, pkt(1, 0, 64))); // queue 0 full
        assert!(tm.enqueue(1, pkt(2, 1, 1_518)));
        let (_, done) = tm.dequeue(Nanos::ZERO).expect("prio queue first");
        let snap = reg.snapshot(done);
        assert_eq!(snap.counter("tm.mq.q0.drops"), 1);
        assert_eq!(snap.counter("tm.mq.q1.drops"), 0);
        assert_eq!(snap.counter("tm.mq.tx_packets"), 1);
        assert_eq!(snap.counter("tm.mq.tx_bits"), 64 * 8);
        match snap.get("tm.mq.backlog_pkts") {
            Some(MetricValue::Gauge { value, max }) => {
                assert_eq!(*value, 1);
                assert_eq!(*max, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(snap
            .events
            .iter()
            .any(|e| e.kind == TraceKind::TailDrop && e.a == 0 && e.b == 1));
    }

    #[test]
    fn empty_tm_dequeues_none() {
        let mut tm = MultiQueueTm::new(
            BitRate::from_gbps(1.0),
            WireFraming::ETHERNET,
            vec![HwQueueConfig::default()],
        );
        assert!(tm.dequeue(Nanos::ZERO).is_none());
        assert_eq!(tm.tx_packets(), 0);
        assert_eq!(tm.num_queues(), 1);
    }
}
