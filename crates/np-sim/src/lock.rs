//! Virtual-time lock contention model.
//!
//! The scheduling tree's per-class update sections are guarded by locks
//! (paper §IV-C, Figure 7). Under the discrete-event simulation the real
//! `parking_lot` locks in `flowvalve` never contend (events are processed
//! one at a time), so contention must be *modeled*: each simulated lock
//! tracks when it becomes free, `try_acquire` fails while it is held, and a
//! blocking `acquire` returns the delay a core would have spent spinning.
//!
//! This is the mechanism behind the Figure 7 ablation: a global-lock
//! scheduler serializes every packet through one `LockId`, while FlowValve's
//! per-class locks only collide on genuinely concurrent updates of the same
//! class.

use std::sync::Arc;

use fv_telemetry::metrics::{Counter, Histogram};
use fv_telemetry::trace::{EventRing, TraceKind};
use fv_telemetry::Registry;
use sim_core::time::Nanos;

use crate::fault::FaultInjector;

/// Identifies one simulated lock (e.g. one scheduling-tree class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

/// Statistics about lock behaviour, for the ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Successful `try_acquire` calls.
    pub try_acquired: u64,
    /// Failed `try_acquire` calls (lock was held).
    pub try_failed: u64,
    /// Blocking acquires that had to wait.
    pub contended: u64,
    /// Total simulated time spent waiting in blocking acquires.
    pub wait_total: Nanos,
}

/// Per-lock attribution row: everything the contention profiler needs to
/// rank locks by wait and hold pressure (`fv profile` / `fv top`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerLockStats {
    /// Successful acquisitions (try or blocking).
    pub acquires: u64,
    /// Failed `try_acquire` calls (lock was held).
    pub try_failed: u64,
    /// Blocking acquires that had to wait.
    pub contended: u64,
    /// Total simulated time spent waiting in blocking acquires.
    pub wait_total: Nanos,
    /// Total simulated time the lock was held (critical-section time).
    pub hold_total: Nanos,
}

/// A table of simulated locks.
///
/// # Example
///
/// ```
/// use np_sim::lock::{LockId, LockTable};
/// use sim_core::time::Nanos;
///
/// let mut locks = LockTable::new(4);
/// let hold = Nanos::from_nanos(100);
/// assert!(locks.try_acquire(LockId(0), Nanos::ZERO, hold));
/// // Still held at t=50: a second core fails its try-lock and skips the
/// // update, exactly as Algorithm 1 prescribes.
/// assert!(!locks.try_acquire(LockId(0), Nanos::from_nanos(50), hold));
/// // Free again at t=100.
/// assert!(locks.try_acquire(LockId(0), Nanos::from_nanos(100), hold));
/// ```
/// Registry-backed handles mirroring [`LockStats`], plus a wait-time
/// histogram and `LockWait` trace events. Recording is relaxed-atomic only.
#[derive(Debug, Clone)]
struct LockTelemetry {
    try_acquired: Arc<Counter>,
    try_failed: Arc<Counter>,
    contended: Arc<Counter>,
    wait_ns: Arc<Counter>,
    wait_hist: Arc<Histogram>,
    ring: Arc<EventRing>,
}

#[derive(Debug, Clone)]
pub struct LockTable {
    free_at: Vec<Nanos>,
    stats: LockStats,
    per_lock: Vec<PerLockStats>,
    telemetry: Option<LockTelemetry>,
    injector: Option<Arc<dyn FaultInjector>>,
}

impl LockTable {
    /// Creates a table of `n` locks, all initially free.
    pub fn new(n: usize) -> Self {
        LockTable {
            free_at: vec![Nanos::ZERO; n],
            stats: LockStats::default(),
            per_lock: vec![PerLockStats::default(); n],
            telemetry: None,
            injector: None,
        }
    }

    /// Installs a fault injector whose [`FaultInjector::lock_hold_permille`]
    /// scales every subsequent hold time (lock-latency inflation).
    pub fn set_fault_injector(&mut self, injector: Arc<dyn FaultInjector>) {
        self.injector = Some(injector);
    }

    /// The hold time after any injected lock-latency inflation.
    fn effective_hold(&self, now: Nanos, hold: Nanos) -> Nanos {
        match &self.injector {
            Some(inj) => {
                let permille = inj.lock_hold_permille(now);
                if permille == 1000 {
                    hold
                } else {
                    Nanos::from_nanos(hold.as_nanos().saturating_mul(permille) / 1000)
                }
            }
            None => hold,
        }
    }

    /// Mirrors every acquisition into `registry` under the `lock.*`
    /// namespace (counters for the [`LockStats`] fields, a wait-time
    /// histogram, and `LockWait` trace events for contended acquires).
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = Some(LockTelemetry {
            try_acquired: registry.counter("lock.try_acquired"),
            try_failed: registry.counter("lock.try_failed"),
            contended: registry.counter("lock.contended"),
            wait_ns: registry.counter("lock.wait_ns"),
            wait_hist: registry.histogram("lock.wait_hist_ns"),
            ring: registry.ring(),
        });
    }

    /// Number of locks in the table.
    pub fn len(&self) -> usize {
        self.free_at.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.free_at.is_empty()
    }

    /// Grows the table to hold at least `n` locks.
    pub fn ensure(&mut self, n: usize) {
        if self.free_at.len() < n {
            self.free_at.resize(n, Nanos::ZERO);
            self.per_lock.resize(n, PerLockStats::default());
        }
    }

    /// Attempts to acquire `lock` at time `now`, holding it for `hold` on
    /// success. Returns whether the acquisition succeeded.
    ///
    /// # Panics
    ///
    /// Panics if `lock` is out of range.
    pub fn try_acquire(&mut self, lock: LockId, now: Nanos, hold: Nanos) -> bool {
        let hold = self.effective_hold(now, hold);
        let per = &mut self.per_lock[lock.0 as usize];
        let f = &mut self.free_at[lock.0 as usize];
        if *f <= now {
            *f = now + hold;
            self.stats.try_acquired += 1;
            per.acquires += 1;
            per.hold_total += hold;
            if let Some(t) = &self.telemetry {
                t.try_acquired.incr(0);
            }
            true
        } else {
            self.stats.try_failed += 1;
            per.try_failed += 1;
            if let Some(t) = &self.telemetry {
                t.try_failed.incr(0);
            }
            false
        }
    }

    /// Blocking acquire: waits until the lock frees, holds it for `hold`,
    /// and returns the instant the critical section *begins* (≥ `now`).
    ///
    /// # Panics
    ///
    /// Panics if `lock` is out of range.
    pub fn acquire(&mut self, lock: LockId, now: Nanos, hold: Nanos) -> Nanos {
        let hold = self.effective_hold(now, hold);
        let per = &mut self.per_lock[lock.0 as usize];
        let f = &mut self.free_at[lock.0 as usize];
        let start = (*f).max(now);
        let wait = start - now;
        if start > now {
            self.stats.contended += 1;
            self.stats.wait_total += wait;
            per.contended += 1;
            per.wait_total += wait;
        }
        *f = start + hold;
        self.stats.try_acquired += 1;
        per.acquires += 1;
        per.hold_total += hold;
        if let Some(t) = &self.telemetry {
            t.try_acquired.incr(0);
            t.wait_hist.record(wait.as_nanos());
            if start > now {
                t.contended.incr(0);
                t.wait_ns.add(0, wait.as_nanos());
                t.ring
                    .record(now, TraceKind::LockWait, lock.0 as u64, wait.as_nanos());
            }
        }
        start
    }

    /// When `lock` next becomes free.
    pub fn free_at(&self, lock: LockId) -> Nanos {
        self.free_at[lock.0 as usize]
    }

    /// Accumulated contention statistics.
    pub fn stats(&self) -> LockStats {
        self.stats
    }

    /// Per-lock attribution rows, indexed by [`LockId`].
    pub fn per_lock_stats(&self) -> &[PerLockStats] {
        &self.per_lock
    }

    /// Resets all locks to free and clears statistics.
    pub fn reset(&mut self) {
        self.free_at.fill(Nanos::ZERO);
        self.stats = LockStats::default();
        self.per_lock.fill(PerLockStats::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOLD: Nanos = Nanos::from_nanos(100);

    #[test]
    fn try_acquire_fails_while_held() {
        let mut t = LockTable::new(1);
        assert!(t.try_acquire(LockId(0), Nanos::ZERO, HOLD));
        assert!(!t.try_acquire(LockId(0), Nanos::from_nanos(99), HOLD));
        assert!(t.try_acquire(LockId(0), Nanos::from_nanos(100), HOLD));
        assert_eq!(t.stats().try_acquired, 2);
        assert_eq!(t.stats().try_failed, 1);
    }

    #[test]
    fn blocking_acquire_serializes() {
        let mut t = LockTable::new(1);
        // Three cores arrive simultaneously: they serialize back-to-back.
        let s1 = t.acquire(LockId(0), Nanos::ZERO, HOLD);
        let s2 = t.acquire(LockId(0), Nanos::ZERO, HOLD);
        let s3 = t.acquire(LockId(0), Nanos::ZERO, HOLD);
        assert_eq!(s1, Nanos::ZERO);
        assert_eq!(s2, Nanos::from_nanos(100));
        assert_eq!(s3, Nanos::from_nanos(200));
        assert_eq!(t.stats().contended, 2);
        assert_eq!(t.stats().wait_total, Nanos::from_nanos(300));
    }

    #[test]
    fn independent_locks_do_not_interfere() {
        let mut t = LockTable::new(2);
        assert!(t.try_acquire(LockId(0), Nanos::ZERO, HOLD));
        assert!(t.try_acquire(LockId(1), Nanos::ZERO, HOLD));
    }

    #[test]
    fn acquire_after_free_is_uncontended() {
        let mut t = LockTable::new(1);
        t.acquire(LockId(0), Nanos::ZERO, HOLD);
        let s = t.acquire(LockId(0), Nanos::from_nanos(500), HOLD);
        assert_eq!(s, Nanos::from_nanos(500));
        assert_eq!(t.stats().contended, 0);
    }

    #[test]
    fn ensure_grows() {
        let mut t = LockTable::new(1);
        t.ensure(10);
        assert_eq!(t.len(), 10);
        assert!(t.try_acquire(LockId(9), Nanos::ZERO, HOLD));
        t.ensure(5); // never shrinks
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn telemetry_mirrors_stats() {
        let reg = Registry::new();
        let mut t = LockTable::new(2);
        t.attach_telemetry(&reg);
        assert!(t.try_acquire(LockId(0), Nanos::ZERO, HOLD));
        assert!(!t.try_acquire(LockId(0), Nanos::from_nanos(10), HOLD));
        // Held until t=100: a blocking acquire at t=20 waits 80 ns.
        let start = t.acquire(LockId(0), Nanos::from_nanos(20), HOLD);
        assert_eq!(start, Nanos::from_nanos(100));
        let snap = reg.snapshot(Nanos::from_nanos(500));
        assert_eq!(snap.counter("lock.try_acquired"), 2);
        assert_eq!(snap.counter("lock.try_failed"), 1);
        assert_eq!(snap.counter("lock.contended"), 1);
        assert_eq!(snap.counter("lock.wait_ns"), 80);
        let hist = snap.histogram("lock.wait_hist_ns").expect("wait histogram");
        assert_eq!(hist.count, 1);
        assert!(snap
            .events
            .iter()
            .any(|e| e.kind == TraceKind::LockWait && e.a == 0 && e.b == 80));
        // The plain-struct view agrees with the registry view.
        assert_eq!(t.stats().wait_total, Nanos::from_nanos(80));
    }

    #[test]
    fn per_lock_rows_attribute_waits_and_holds() {
        let mut t = LockTable::new(2);
        // Lock 0: one clean try, one failed try, one contended acquire.
        assert!(t.try_acquire(LockId(0), Nanos::ZERO, HOLD));
        assert!(!t.try_acquire(LockId(0), Nanos::from_nanos(10), HOLD));
        let start = t.acquire(LockId(0), Nanos::from_nanos(20), HOLD);
        assert_eq!(start, Nanos::from_nanos(100));
        // Lock 1: one uncontended acquire.
        t.acquire(LockId(1), Nanos::ZERO, HOLD);

        let rows = t.per_lock_stats();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].acquires, 2);
        assert_eq!(rows[0].try_failed, 1);
        assert_eq!(rows[0].contended, 1);
        assert_eq!(rows[0].wait_total, Nanos::from_nanos(80));
        assert_eq!(rows[0].hold_total, Nanos::from_nanos(200));
        assert_eq!(rows[1].acquires, 1);
        assert_eq!(rows[1].contended, 0);
        assert_eq!(rows[1].hold_total, HOLD);

        // Aggregate view stays consistent with the per-lock rows.
        assert_eq!(
            t.stats().wait_total,
            rows.iter().map(|r| r.wait_total).sum()
        );

        t.ensure(4);
        assert_eq!(t.per_lock_stats().len(), 4);
        t.reset();
        assert_eq!(t.per_lock_stats()[0], PerLockStats::default());
    }

    #[test]
    fn injected_hold_inflation_extends_critical_sections() {
        #[derive(Debug)]
        struct Slow;
        impl crate::fault::FaultInjector for Slow {
            fn lock_hold_permille(&self, now: Nanos) -> u64 {
                if now < Nanos::from_nanos(500) {
                    8_000
                } else {
                    1000
                }
            }
        }
        let mut t = LockTable::new(1);
        t.set_fault_injector(Arc::new(Slow));
        // 100 ns hold inflated 8x: still held at t=700.
        assert!(t.try_acquire(LockId(0), Nanos::ZERO, HOLD));
        assert!(!t.try_acquire(LockId(0), Nanos::from_nanos(700), HOLD));
        assert!(t.try_acquire(LockId(0), Nanos::from_nanos(800), HOLD));
        // Past the window the hold is nominal again.
        assert!(t.try_acquire(LockId(0), Nanos::from_nanos(900), HOLD));
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = LockTable::new(1);
        t.acquire(LockId(0), Nanos::ZERO, HOLD);
        t.acquire(LockId(0), Nanos::ZERO, HOLD);
        t.reset();
        assert_eq!(t.stats(), LockStats::default());
        assert_eq!(t.free_at(LockId(0)), Nanos::ZERO);
    }
}
