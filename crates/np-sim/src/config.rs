//! SmartNIC configuration and the calibrated Agilio-like profile.

use sim_core::time::{Freq, Nanos};
use sim_core::units::{BitRate, ByteSize, WireFraming};

/// Static configuration of a simulated NP-based SmartNIC.
///
/// The default profile ([`NicConfig::agilio_cx_40g`]) is calibrated so the
/// reproduction lands in the same regime as the paper's Netronome Agilio CX
/// 40GbE prototype: line-rate-bound for MTU frames, compute-bound around
/// 20 Mpps for 64-byte frames (Figure 13). See EXPERIMENTS.md for the
/// calibration notes.
#[derive(Debug, Clone, PartialEq)]
pub struct NicConfig {
    /// Number of worker micro-engines (processing cores).
    pub num_mes: usize,
    /// Hardware threads per micro-engine; bounds outstanding packets per ME.
    pub threads_per_me: usize,
    /// Micro-engine clock frequency.
    pub freq: Freq,
    /// Maximum time a packet may wait for a free worker thread before the
    /// receive ring overflows and the packet is dropped at ingress.
    pub rx_max_wait: Nanos,
    /// Egress wire rate.
    pub line_rate: BitRate,
    /// Wire framing overhead model.
    pub framing: WireFraming,
    /// Byte capacity of each traffic-manager FIFO queue.
    pub tm_queue_capacity: ByteSize,
    /// Number of traffic-manager FIFO queues at the wire side.
    pub tm_queues: usize,
    /// Fixed pipeline latency between host DMA and wire, independent of
    /// load (the paper measures 161 µs of unavoidable forwarding latency at
    /// 40 Gbps even with scheduling disabled).
    pub base_pipeline_latency: Nanos,
    /// Cycle costs of the processing stages.
    pub costs: CycleCosts,
}

/// Per-operation instruction-cycle costs charged to worker micro-engines.
///
/// The model splits work into *instruction cycles* (occupy the ME; divide
/// aggregate throughput) and treats memory-stall time as hidden by the 4-8
/// hardware threads per ME, which is exactly the property network processors
/// are built around. Stall time therefore shows up as latency
/// ([`NicConfig::base_pipeline_latency`]) rather than throughput loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleCosts {
    /// Header parse + packet metadata setup.
    pub parse: u64,
    /// Exact-match flow cache hit (dedicated lookup engines).
    pub classify_hit: u64,
    /// Flow cache miss: full filter-table walk + cache insert.
    pub classify_miss: u64,
    /// One atomic meter/counter operation on transactional memory.
    pub atomic_op: u64,
    /// Per-class token bucket refill + rate recomputation (the guarded
    /// update section of Algorithm 1).
    pub class_update: u64,
    /// Acquiring/releasing one CLS lock (uncontended cost; contention is
    /// modeled separately by the lock table).
    pub lock_op: u64,
    /// Egress DMA + traffic-manager enqueue descriptor work.
    pub tx_enqueue: u64,
    /// Baseline forwarding work outside FlowValve (buffer management,
    /// reorder bookkeeping, MAC egress prep).
    pub forward_base: u64,
    /// Flattening one admission-chain step when the scheduling program is
    /// (re)compiled: resolving the class, emitting the step and writing it
    /// to shared memory. Paid per reconfiguration, never per packet.
    pub program_compile: u64,
}

impl CycleCosts {
    /// Calibrated Agilio-like costs (see EXPERIMENTS.md §calibration).
    pub const fn agilio() -> Self {
        CycleCosts {
            parse: 260,
            classify_hit: 180,
            classify_miss: 1_900,
            atomic_op: 40,
            class_update: 260,
            lock_op: 60,
            tx_enqueue: 220,
            forward_base: 940,
            program_compile: 1_200,
        }
    }
}

impl Default for CycleCosts {
    fn default() -> Self {
        Self::agilio()
    }
}

impl NicConfig {
    /// The calibrated 40 GbE Agilio-like profile used throughout the
    /// reproduction: 50 worker MEs × 8 threads at 800 MHz, 40 Gbps wire.
    ///
    /// # Example
    ///
    /// ```
    /// use np_sim::config::NicConfig;
    ///
    /// let cfg = NicConfig::agilio_cx_40g();
    /// assert_eq!(cfg.line_rate.as_gbps(), 40.0);
    /// ```
    pub fn agilio_cx_40g() -> Self {
        NicConfig {
            num_mes: 50,
            threads_per_me: 8,
            freq: Freq::from_mhz(800),
            rx_max_wait: Nanos::from_micros(50),
            line_rate: BitRate::from_gbps(40.0),
            framing: WireFraming::ETHERNET,
            tm_queue_capacity: ByteSize::from_kib(256),
            tm_queues: 1,
            base_pipeline_latency: Nanos::from_micros(160),
            costs: CycleCosts::agilio(),
        }
    }

    /// A 10 Gbps variant of the same silicon (for the motivation-example
    /// experiments that run on a 10 Gbps link).
    pub fn agilio_cx_10g() -> Self {
        NicConfig {
            line_rate: BitRate::from_gbps(10.0),
            // At 10 Gbps the pipeline is far from its internal bottleneck;
            // the paper measures the lowest delay of all schedulers here.
            base_pipeline_latency: Nanos::from_micros(35),
            ..Self::agilio_cx_40g()
        }
    }

    /// A hypothetical 100 GbE port of the same design (paper §VI "Higher
    /// Line rate"): more micro-engines at a higher clock, as on the
    /// NFP-6000 class parts. Saturating 100 Gbps with 1500 B frames needs
    /// only 8.33 Mpps — well inside the scheduling pipeline's compute
    /// bound — so FlowValve ports without algorithmic changes.
    pub fn agilio_100g() -> Self {
        NicConfig {
            num_mes: 96,
            freq: Freq::from_ghz(1.2),
            line_rate: BitRate::from_gbps(100.0),
            tm_queue_capacity: ByteSize::from_kib(640),
            base_pipeline_latency: Nanos::from_micros(110),
            ..Self::agilio_cx_40g()
        }
    }

    /// Total worker hardware threads.
    pub fn total_threads(&self) -> usize {
        self.num_mes * self.threads_per_me
    }

    /// Aggregate instruction-cycle budget per second across all MEs.
    pub fn aggregate_cycle_rate(&self) -> u64 {
        self.num_mes as u64 * self.freq.as_hz()
    }

    /// The compute-bound packet rate ceiling for a given per-packet
    /// instruction-cycle cost.
    pub fn compute_bound_pps(&self, cycles_per_packet: u64) -> f64 {
        if cycles_per_packet == 0 {
            return f64::INFINITY;
        }
        self.aggregate_cycle_rate() as f64 / cycles_per_packet as f64
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_mes == 0 {
            return Err("num_mes must be positive".into());
        }
        if self.threads_per_me == 0 {
            return Err("threads_per_me must be positive".into());
        }
        if self.line_rate == BitRate::ZERO {
            return Err("line_rate must be positive".into());
        }
        if self.tm_queues == 0 {
            return Err("tm_queues must be positive".into());
        }
        if self.tm_queue_capacity == ByteSize::ZERO {
            return Err("tm_queue_capacity must be positive".into());
        }
        Ok(())
    }
}

impl Default for NicConfig {
    fn default() -> Self {
        Self::agilio_cx_40g()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_validates() {
        assert_eq!(NicConfig::agilio_cx_40g().validate(), Ok(()));
        assert_eq!(NicConfig::agilio_cx_10g().validate(), Ok(()));
    }

    #[test]
    fn ten_gig_profile_differs_only_where_expected() {
        let a = NicConfig::agilio_cx_40g();
        let b = NicConfig::agilio_cx_10g();
        assert_eq!(a.num_mes, b.num_mes);
        assert_eq!(b.line_rate.as_gbps(), 10.0);
        assert!(b.base_pipeline_latency < a.base_pipeline_latency);
    }

    #[test]
    fn totals() {
        let cfg = NicConfig::agilio_cx_40g();
        assert_eq!(cfg.total_threads(), 400);
        assert_eq!(cfg.aggregate_cycle_rate(), 50 * 800_000_000);
    }

    #[test]
    fn compute_bound_regime_matches_calibration_target() {
        // The calibrated fair-queueing pipeline costs roughly 2000 instruction
        // cycles per packet; the profile must then be compute-bound near
        // 20 Mpps (the paper's 19.69 Mpps at 64 B) and line-rate-bound at MTU.
        let cfg = NicConfig::agilio_cx_40g();
        let pps = cfg.compute_bound_pps(2_000);
        assert!((15e6..25e6).contains(&pps), "pps {pps}");
        // 1518 B line rate is ~3.25 Mpps << compute bound.
        let line = cfg.framing.line_rate_pps(cfg.line_rate, 1518);
        assert!(line < pps);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = NicConfig::agilio_cx_40g();
        cfg.num_mes = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = NicConfig::agilio_cx_40g();
        cfg.tm_queues = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = NicConfig::agilio_cx_40g();
        cfg.line_rate = BitRate::ZERO;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_cycle_cost_is_unbounded() {
        let cfg = NicConfig::agilio_cx_40g();
        assert!(cfg.compute_bound_pps(0).is_infinite());
    }
}
