//! Fault-injection hook points for the NIC model.
//!
//! The fv-chaos subsystem perturbs the simulation through this trait: the
//! NIC, worker pool, traffic manager and lock table each consult an
//! installed [`FaultInjector`] on their hot paths and degrade accordingly.
//! Every method takes the *current virtual time* and is expected to be a
//! pure function of it (a fault window `[at, at + dur)` either contains
//! `now` or it does not), which is what makes a faulted run replayable:
//! the same packet arrivals against the same plan observe the same faults.
//!
//! All methods default to "no fault", so a blanket injector only overrides
//! what it perturbs, and a NIC without an injector pays nothing beyond an
//! `Option` check.

use sim_core::time::Nanos;

/// A traffic-manager fault verdict for one enqueue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TmFault {
    /// No fault: enqueue proceeds normally.
    #[default]
    None,
    /// The serializer is paused: nothing starts on the wire before `until`.
    /// Arrivals still enqueue, so the backlog grows and tail drops follow
    /// naturally once the pause outlasts the buffer.
    Paused {
        /// When the serializer resumes.
        until: Nanos,
    },
    /// The frame is corrupted inside the TM and dropped.
    CorruptDrop,
}

/// Deterministic fault source consulted by the NIC model's components.
///
/// Implementations must answer from the supplied timestamp (plus their own
/// deterministic state), never from wall-clock time or unseeded randomness.
pub trait FaultInjector: std::fmt::Debug + Send + Sync {
    /// Wire rate scale in permille at `now` (1000 = nominal). Values below
    /// 1000 stretch serialization times; values ≤ 0 are clamped to 1 by
    /// the traffic manager.
    fn wire_rate_permille(&self, _now: Nanos) -> u64 {
        1000
    }

    /// Number of micro-engines offline at `now`, and when they return.
    /// Engines `0..n` cannot *start* new work before the returned instant;
    /// work already dispatched runs to completion.
    fn stalled_engines(&self, _now: Nanos) -> Option<(usize, Nanos)> {
        None
    }

    /// Extra instruction cycles charged to every packet processed at `now`
    /// (models firmware slow paths under stress).
    fn extra_cycles(&self, _now: Nanos) -> u64 {
        0
    }

    /// Traffic-manager verdict for a frame offered at `now`.
    fn tm_fault(&self, _now: Nanos, _pkt_id: u64) -> TmFault {
        TmFault::None
    }

    /// Lock hold-time scale in permille at `now` (1000 = nominal). Values
    /// above 1000 inflate critical sections, driving up try-lock failures
    /// and blocking waits.
    fn lock_hold_permille(&self, _now: Nanos) -> u64 {
        1000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Noop;
    impl FaultInjector for Noop {}

    #[test]
    fn defaults_are_neutral() {
        let f = Noop;
        let t = Nanos::from_micros(5);
        assert_eq!(f.wire_rate_permille(t), 1000);
        assert_eq!(f.stalled_engines(t), None);
        assert_eq!(f.extra_cycles(t), 0);
        assert_eq!(f.tm_fault(t, 7), TmFault::None);
        assert_eq!(f.lock_hold_permille(t), 1000);
    }
}
