//! The virtual-time time-series sampler.
//!
//! A [`TimeSampler`] is driven from the simulation's event loop: call
//! [`TimeSampler::advance_to`] as virtual time moves, and on every
//! interval boundary (a [`sim_core::tick::Ticker`] tick) it reads the
//! registry's counter totals and appends one [`Frame`] of *deltas* — how
//! much each counter grew over the closed interval. Frames live in a
//! bounded ring: when full, the oldest frame is discarded (and counted),
//! so a sampler attached to an unbounded run uses bounded memory.
//!
//! Deltas, not totals, are the exported unit because every downstream
//! consumer wants a rate: `delta / interval` is the per-interval rate,
//! and [`TimeSampler::window_rate`] sums deltas over `(from, to]` for
//! the SLO checker's steady-state windows.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use fv_telemetry::json::JsonValue;
use fv_telemetry::metrics::Counter;
use fv_telemetry::Registry;
use sim_core::tick::Ticker;
use sim_core::time::Nanos;

/// How a [`TimeSampler`] samples.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Virtual time between frames (default 1 ms).
    pub interval: Nanos,
    /// Maximum retained frames; older frames are dropped (default 4096).
    pub capacity: usize,
    /// Counter-name prefixes to sample; empty samples every counter.
    pub prefixes: Vec<String>,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            interval: Nanos::from_millis(1),
            capacity: 4096,
            prefixes: Vec::new(),
        }
    }
}

impl SamplerConfig {
    /// Sets the sampling interval (builder-style).
    pub fn with_interval(mut self, interval: Nanos) -> Self {
        self.interval = interval;
        self
    }

    /// Restricts sampling to counters starting with `prefix`.
    pub fn with_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.prefixes.push(prefix.into());
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.prefixes.is_empty() || self.prefixes.iter().any(|p| name.starts_with(p))
    }
}

/// One sample: counter deltas over the interval ending at `at`.
///
/// `deltas[i]` belongs to the sampler's `names()[i]`; frames taken before
/// a counter first registered are shorter, and exporters pad them with
/// zeros (a counter that did not exist accumulated nothing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// End of the interval this frame covers.
    pub at: Nanos,
    /// Per-counter growth over the interval, indexed like `names()`.
    pub deltas: Vec<u64>,
}

/// Samples registry counters into a bounded ring of delta frames.
///
/// # Example
///
/// ```
/// use fv_scope::sampler::{SamplerConfig, TimeSampler};
/// use fv_telemetry::Registry;
/// use sim_core::time::Nanos;
///
/// let reg = Registry::new();
/// let tx = reg.counter("nic.tx_bits");
/// let cfg = SamplerConfig::default().with_interval(Nanos::from_micros(10));
/// let mut sampler = TimeSampler::new(&reg, cfg);
///
/// tx.add(0, 8_000);
/// sampler.advance_to(Nanos::from_micros(10)); // closes the first interval
/// tx.add(0, 4_000);
/// sampler.advance_to(Nanos::from_micros(25)); // closes the second
///
/// let frames: Vec<_> = sampler.frames().collect();
/// assert_eq!(frames.len(), 2);
/// assert_eq!(frames[0].deltas, [8_000]);
/// assert_eq!(frames[1].deltas, [4_000]);
/// ```
#[derive(Debug)]
pub struct TimeSampler {
    registry: Registry,
    cfg: SamplerConfig,
    ticker: Ticker,
    names: Vec<String>,
    index: HashMap<String, usize>,
    /// Cached counter handles, column-aligned with `names`. Resolved once
    /// at attach time and re-resolved only when the registry's counter
    /// generation moves: the per-tick path reads totals through these
    /// wait-free `Arc`s instead of walking the registry under its lock.
    handles: Vec<Arc<Counter>>,
    /// The [`Registry::counter_generation`] the handle cache reflects.
    seen_gen: u64,
    last: Vec<u64>,
    frames: VecDeque<Frame>,
    dropped: u64,
}

impl TimeSampler {
    /// Attaches a sampler to `registry`. Counters existing at attach time
    /// are baselined immediately; counters that register later join the
    /// series at their first sampled tick.
    pub fn new(registry: &Registry, cfg: SamplerConfig) -> TimeSampler {
        let ticker = Ticker::new(cfg.interval);
        let mut s = TimeSampler {
            registry: registry.clone(),
            cfg,
            ticker,
            names: Vec::new(),
            index: HashMap::new(),
            handles: Vec::new(),
            seen_gen: registry.counter_generation(),
            last: Vec::new(),
            frames: VecDeque::new(),
            dropped: 0,
        };
        // Baseline without emitting a frame: pre-attach accumulation is
        // not part of any sampled interval.
        for (name, handle) in s.registry.counter_handles() {
            if s.cfg.matches(&name) {
                let total = handle.total();
                s.admit(name, handle, total);
            }
        }
        s
    }

    fn admit(&mut self, name: String, handle: Arc<Counter>, baseline: u64) -> usize {
        let idx = self.names.len();
        self.index.insert(name.clone(), idx);
        self.names.push(name);
        self.handles.push(handle);
        self.last.push(baseline);
        idx
    }

    /// Folds counters that registered since the last rescan into the
    /// column set. Cold path: runs only when the registry's counter
    /// generation moved. A mid-run counter is admitted with a zero
    /// baseline — its whole total accumulated within sampled time, so it
    /// becomes the first frame's delta.
    fn rescan(&mut self) {
        self.seen_gen = self.registry.counter_generation();
        for (name, handle) in self.registry.counter_handles() {
            if self.cfg.matches(&name) && !self.index.contains_key(&name) {
                self.admit(name, handle, 0);
            }
        }
    }

    /// The sampling configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.cfg
    }

    /// Sampled counter names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Retained frames, oldest first.
    pub fn frames(&self) -> impl ExactSizeIterator<Item = &Frame> {
        self.frames.iter()
    }

    /// Frames evicted because the ring was full.
    pub fn dropped_frames(&self) -> u64 {
        self.dropped
    }

    /// Advances virtual time to `now`, emitting one frame per interval
    /// boundary crossed. Call with monotonically non-decreasing times;
    /// calls that cross no boundary are cheap (one comparison).
    pub fn advance_to(&mut self, now: Nanos) {
        if self.ticker.next_tick() > now {
            return;
        }
        let due: Vec<Nanos> = self.ticker.due(now).collect();
        for at in due {
            self.sample_at(at);
        }
    }

    fn sample_at(&mut self, at: Nanos) {
        // One atomic load answers "did any counter register since my last
        // tick?"; the rescan (registry lock, name clones) happens only
        // when it did, so steady-state ticks are pure handle reads.
        if self.registry.counter_generation() != self.seen_gen {
            self.rescan();
        }
        let mut deltas = Vec::with_capacity(self.handles.len());
        for (i, handle) in self.handles.iter().enumerate() {
            let total = handle.total();
            deltas.push(total - self.last[i]);
            self.last[i] = total;
        }
        if self.frames.len() >= self.cfg.capacity {
            self.frames.pop_front();
            self.dropped += 1;
        }
        self.frames.push_back(Frame { at, deltas });
    }

    /// Average growth per second of counter `name` over the frames in
    /// `(from, to]`. `None` when the counter is unknown, the window is
    /// empty (no frames, or `to <= from`), or part of the window was
    /// evicted from the ring.
    pub fn window_rate(&self, name: &str, from: Nanos, to: Nanos) -> Option<f64> {
        let &idx = self.index.get(name)?;
        if to <= from {
            return None;
        }
        // The window must be fully covered by retained frames.
        let first_retained = self.frames.front()?.at;
        if first_retained.saturating_sub(self.cfg.interval) > from {
            return None;
        }
        let mut sum = 0u64;
        let mut any = false;
        for f in &self.frames {
            if f.at > from && f.at <= to {
                sum += f.deltas.get(idx).copied().unwrap_or(0);
                any = true;
            }
        }
        if !any {
            return None;
        }
        Some(sum as f64 / (to - from).as_secs_f64())
    }

    /// The `(at, delta)` series of one counter. Empty when unknown.
    pub fn series(&self, name: &str) -> Vec<(Nanos, u64)> {
        match self.index.get(name) {
            Some(&idx) => self
                .frames
                .iter()
                .map(|f| (f.at, f.deltas.get(idx).copied().unwrap_or(0)))
                .collect(),
            None => Vec::new(),
        }
    }

    /// CSV export: header `t_ns,<name>,…`, one row per frame, short
    /// (early) frames padded with zeros.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_ns");
        for n in &self.names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        for f in &self.frames {
            out.push_str(&f.at.as_nanos().to_string());
            for i in 0..self.names.len() {
                out.push(',');
                out.push_str(&f.deltas.get(i).copied().unwrap_or(0).to_string());
            }
            out.push('\n');
        }
        out
    }

    /// JSONL export: one object per frame, `{"t_ns": …, "deltas": {…}}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for f in &self.frames {
            let doc = JsonValue::obj([
                ("t_ns", JsonValue::UInt(f.at.as_nanos())),
                (
                    "deltas",
                    JsonValue::Obj(
                        self.names
                            .iter()
                            .enumerate()
                            .map(|(i, n)| {
                                (
                                    n.clone(),
                                    JsonValue::UInt(f.deltas.get(i).copied().unwrap_or(0)),
                                )
                            })
                            .collect(),
                    ),
                ),
            ]);
            out.push_str(&doc.to_compact());
            out.push('\n');
        }
        out
    }
}

/// Renders a registry snapshot in the Prometheus text exposition format.
///
/// Metric names are sanitized (`[^a-zA-Z0-9_:]` → `_`) and prefixed with
/// `fv_`; histograms export as summaries with `quantile` labels.
pub fn prometheus_text(snapshot: &fv_telemetry::Snapshot) -> String {
    use fv_telemetry::MetricValue;

    fn sanitize(name: &str) -> String {
        let mut out = String::from("fv_");
        for c in name.chars() {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                out.push(c);
            } else {
                out.push('_');
            }
        }
        out
    }

    let mut out = String::new();
    for e in &snapshot.entries {
        let name = sanitize(&e.name);
        match &e.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
            MetricValue::Gauge { value, max } => {
                out.push_str(&format!(
                    "# TYPE {name} gauge\n{name} {value}\n{name}_max {max}\n"
                ));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} summary\n"));
                for (q, v) in [
                    ("0.5", h.p50),
                    ("0.9", h.p90),
                    ("0.99", h.p99),
                    ("0.999", h.p999),
                ] {
                    out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
                }
                out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
            }
            MetricValue::Rate { per_sec } => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {per_sec}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Nanos {
        Nanos::from_micros(n)
    }

    #[test]
    fn deltas_reset_every_interval() {
        let reg = Registry::new();
        let c = reg.counter("x");
        let mut s = TimeSampler::new(&reg, SamplerConfig::default().with_interval(us(10)));
        c.add(0, 100);
        s.advance_to(us(10));
        s.advance_to(us(20)); // nothing accumulated
        c.add(0, 50);
        s.advance_to(us(30));
        let series = s.series("x");
        assert_eq!(series, vec![(us(10), 100), (us(20), 0), (us(30), 50)]);
    }

    #[test]
    fn pre_attach_totals_are_baselined_not_sampled() {
        let reg = Registry::new();
        let c = reg.counter("x");
        c.add(0, 1_000_000); // before the sampler exists
        let mut s = TimeSampler::new(&reg, SamplerConfig::default().with_interval(us(10)));
        c.add(0, 5);
        s.advance_to(us(10));
        assert_eq!(s.series("x"), vec![(us(10), 5)]);
    }

    #[test]
    fn late_registering_counters_join_mid_run() {
        let reg = Registry::new();
        let a = reg.counter("a");
        let mut s = TimeSampler::new(&reg, SamplerConfig::default().with_interval(us(10)));
        a.add(0, 1);
        s.advance_to(us(10));
        let b = reg.counter("b"); // registers after the first frame
        b.add(0, 7);
        s.advance_to(us(20));
        assert_eq!(s.names(), ["a", "b"]);
        // b's first frame is padded to zero in CSV, 7 in the second row.
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_ns,a,b");
        assert_eq!(lines[1], "10000,1,0");
        assert_eq!(lines[2], "20000,0,7");
    }

    #[test]
    fn prefix_filter_limits_columns() {
        let reg = Registry::new();
        reg.counter("nic.tx").add(0, 1);
        reg.counter("tm.fifo.tx").add(0, 2);
        let mut s = TimeSampler::new(
            &reg,
            SamplerConfig::default()
                .with_interval(us(10))
                .with_prefix("nic."),
        );
        s.advance_to(us(10));
        assert_eq!(s.names(), ["nic.tx"]);
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let reg = Registry::new();
        reg.counter("x");
        let cfg = SamplerConfig {
            interval: us(1),
            capacity: 4,
            prefixes: Vec::new(),
        };
        let mut s = TimeSampler::new(&reg, cfg);
        s.advance_to(us(10));
        assert_eq!(s.frames().len(), 4);
        assert_eq!(s.dropped_frames(), 6);
        assert_eq!(s.frames().next().unwrap().at, us(7));
    }

    #[test]
    fn window_rate_averages_over_the_window() {
        let reg = Registry::new();
        let c = reg.counter("bits");
        let mut s = TimeSampler::new(&reg, SamplerConfig::default().with_interval(us(10)));
        // 8000 bits per 10 us = 800 Mbit/s, over 5 intervals.
        for i in 1..=5u64 {
            c.add(0, 8_000);
            s.advance_to(us(i * 10));
        }
        let rate = s.window_rate("bits", us(10), us(50)).unwrap();
        assert!((rate - 8e8).abs() / 8e8 < 1e-9, "rate {rate}");
        // Unknown counter and empty windows are None, not 0.
        assert!(s.window_rate("nope", us(10), us(50)).is_none());
        assert!(s.window_rate("bits", us(50), us(50)).is_none());
        assert!(s.window_rate("bits", us(60), us(90)).is_none());
    }

    #[test]
    fn window_rate_refuses_evicted_windows() {
        let reg = Registry::new();
        let c = reg.counter("x");
        let cfg = SamplerConfig {
            interval: us(1),
            capacity: 2,
            prefixes: Vec::new(),
        };
        let mut s = TimeSampler::new(&reg, cfg);
        c.add(0, 10);
        s.advance_to(us(10)); // frames 9, 10 retained; 1-8 evicted
        assert!(s.window_rate("x", Nanos::ZERO, us(10)).is_none());
        assert!(s.window_rate("x", us(8), us(10)).is_some());
    }

    #[test]
    fn jsonl_frames_parse_back() {
        let reg = Registry::new();
        let c = reg.counter("x");
        let mut s = TimeSampler::new(&reg, SamplerConfig::default().with_interval(us(10)));
        c.add(0, 3);
        s.advance_to(us(10));
        let line = s.to_jsonl();
        let doc = JsonValue::parse(line.trim()).unwrap();
        assert_eq!(doc.get("t_ns").and_then(JsonValue::as_u64), Some(10_000));
        assert_eq!(
            doc.get("deltas")
                .and_then(|d| d.get("x"))
                .and_then(JsonValue::as_u64),
            Some(3)
        );
    }

    #[test]
    fn prometheus_text_covers_all_metric_kinds() {
        let reg = Registry::new();
        reg.counter("nic.tx_packets").add(0, 5);
        reg.gauge("tm.fifo.backlog_bytes").set(100);
        reg.histogram("span.wire_ns").record(1_000);
        reg.rate("nic.tx_bits_rate", us(10)).record(us(5), 80);
        let text = prometheus_text(&reg.snapshot(us(10)));
        assert!(text.contains("# TYPE fv_nic_tx_packets counter"));
        assert!(text.contains("fv_nic_tx_packets 5"));
        assert!(text.contains("fv_tm_fifo_backlog_bytes 100"));
        assert!(text.contains("fv_span_wire_ns{quantile=\"0.99\"}"));
        assert!(text.contains("fv_span_wire_ns_count 1"));
        // Sanitized: no dots survive.
        assert!(!text.contains("nic.tx_packets"));
    }
}
