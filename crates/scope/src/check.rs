//! Declarative SLO assertions over sampler output and snapshots.
//!
//! A [`Slo`] states an invariant the run must uphold — a class's achieved
//! rate stays within a band of its configured rate over a steady-state
//! window, a drop counter stays at zero, a stage's p99 latency stays
//! under a bound. [`evaluate`] checks every assertion against a
//! [`TimeSampler`]'s delta series and a registry [`Snapshot`], producing
//! a [`CheckReport`] that renders for the terminal (`fv check`) or as
//! JSON, and that tests assert on directly.

use fv_telemetry::json::{JsonValue, ToJson};
use fv_telemetry::Snapshot;
use sim_core::time::Nanos;

use crate::sampler::TimeSampler;

/// One declarative assertion about a run.
#[derive(Debug, Clone)]
pub enum Slo {
    /// The windowed rate of counter `series` (in units/s — bits/s for a
    /// `*_bits` counter) lies in `[min, max]`.
    RateBetween {
        /// Human-readable assertion name.
        name: String,
        /// Sampled counter holding the quantity.
        series: String,
        /// Inclusive lower bound (units per second).
        min: f64,
        /// Inclusive upper bound (units per second).
        max: f64,
    },
    /// The *summed* windowed rate of several counters lies in `[min, max]`
    /// (e.g. all leaf tx_bits against the root's configured rate).
    SumRateBetween {
        /// Human-readable assertion name.
        name: String,
        /// Sampled counters whose rates are summed.
        series: Vec<String>,
        /// Inclusive lower bound (units per second).
        min: f64,
        /// Inclusive upper bound (units per second).
        max: f64,
    },
    /// Counter `counter` is zero at snapshot time (e.g. priority
    /// inversions, unexpected drops).
    CounterZero {
        /// Human-readable assertion name.
        name: String,
        /// The counter that must not have fired.
        counter: String,
    },
    /// The p99 of histogram `histogram` is at most `max_ns`. Holds
    /// vacuously when the histogram is absent or empty.
    P99Below {
        /// Human-readable assertion name.
        name: String,
        /// The latency histogram to bound.
        histogram: String,
        /// Inclusive p99 bound in nanoseconds.
        max_ns: u64,
    },
    /// After a fault clears at `clear`, the windowed rate of `series`
    /// measured over `[clear + within, window end]` is back in
    /// `[min, max]`. Fails when the recovery window is empty or the
    /// series has no samples in it — a run that ends mid-recovery has
    /// not demonstrated recovery.
    RateRecovers {
        /// Human-readable assertion name.
        name: String,
        /// Sampled counter holding the quantity.
        series: String,
        /// Inclusive lower bound (units per second).
        min: f64,
        /// Inclusive upper bound (units per second).
        max: f64,
        /// Virtual time at which the fault window ended.
        clear: Nanos,
        /// Settling time granted before the recovery window opens.
        within: Nanos,
    },
    /// Gauge `gauge` reads at most `max` at snapshot time (e.g. a queue
    /// backlog that must have drained). Fails when the gauge is absent.
    GaugeAtMost {
        /// Human-readable assertion name.
        name: String,
        /// The gauge to bound.
        gauge: String,
        /// Inclusive upper bound on the final gauge value.
        max: u64,
    },
}

impl Slo {
    /// The assertion's display name.
    pub fn name(&self) -> &str {
        match self {
            Slo::RateBetween { name, .. }
            | Slo::SumRateBetween { name, .. }
            | Slo::CounterZero { name, .. }
            | Slo::P99Below { name, .. }
            | Slo::RateRecovers { name, .. }
            | Slo::GaugeAtMost { name, .. } => name,
        }
    }
}

/// The outcome of one [`Slo`].
#[derive(Debug, Clone)]
pub struct SloResult {
    /// The assertion's display name.
    pub name: String,
    /// Whether the invariant held.
    pub passed: bool,
    /// Measured-vs-bound detail for the report line.
    pub detail: String,
}

/// Outcomes of every evaluated [`Slo`].
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// The window the rate assertions were measured over.
    pub window: (Nanos, Nanos),
    /// Per-assertion outcomes, in evaluation order.
    pub results: Vec<SloResult>,
}

impl CheckReport {
    /// Whether every assertion held.
    pub fn passed(&self) -> bool {
        self.results.iter().all(|r| r.passed)
    }

    /// Count of failed assertions.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| !r.passed).count()
    }

    /// Renders one `PASS`/`FAIL` line per assertion plus a verdict line.
    pub fn render(&self) -> String {
        let mut out = format!(
            "conformance over [{} us, {} us]\n",
            self.window.0.as_nanos() / 1_000,
            self.window.1.as_nanos() / 1_000
        );
        for r in &self.results {
            out.push_str(&format!(
                "  {}  {:<40} {}\n",
                if r.passed { "PASS" } else { "FAIL" },
                r.name,
                r.detail
            ));
        }
        let failures = self.failures();
        if failures == 0 {
            out.push_str(&format!(
                "conformance: {} assertions passed\n",
                self.results.len()
            ));
        } else {
            out.push_str(&format!(
                "conformance: {failures} of {} assertions FAILED\n",
                self.results.len()
            ));
        }
        out
    }
}

impl ToJson for SloResult {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("name", JsonValue::Str(self.name.clone())),
            ("passed", JsonValue::Bool(self.passed)),
            ("detail", JsonValue::Str(self.detail.clone())),
        ])
    }
}

impl ToJson for CheckReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("window_from_ns", JsonValue::UInt(self.window.0.as_nanos())),
            ("window_to_ns", JsonValue::UInt(self.window.1.as_nanos())),
            ("passed", JsonValue::Bool(self.passed())),
            ("results", self.results.to_json()),
        ])
    }
}

fn fmt_rate(v: f64) -> String {
    if v.is_infinite() {
        "unbounded".to_owned()
    } else if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Evaluates `slos` against the sampler's series over `window` and the
/// snapshot's counters/histograms. Rate assertions fail (rather than pass
/// vacuously) when their series has no samples in the window.
pub fn evaluate(
    slos: &[Slo],
    sampler: &TimeSampler,
    snapshot: &Snapshot,
    window: (Nanos, Nanos),
) -> CheckReport {
    let (from, to) = window;
    let results = slos
        .iter()
        .map(|slo| match slo {
            Slo::RateBetween {
                name,
                series,
                min,
                max,
            } => match sampler.window_rate(series, from, to) {
                Some(rate) => SloResult {
                    name: name.clone(),
                    passed: (*min..=*max).contains(&rate),
                    detail: format!(
                        "measured {}/s, want [{}/s, {}/s]",
                        fmt_rate(rate),
                        fmt_rate(*min),
                        fmt_rate(*max)
                    ),
                },
                None => SloResult {
                    name: name.clone(),
                    passed: false,
                    detail: format!("series {series:?} has no samples in the window"),
                },
            },
            Slo::SumRateBetween {
                name,
                series,
                min,
                max,
            } => {
                let rates: Vec<Option<f64>> = series
                    .iter()
                    .map(|s| sampler.window_rate(s, from, to))
                    .collect();
                if rates.iter().all(Option::is_none) {
                    SloResult {
                        name: name.clone(),
                        passed: false,
                        detail: "no series has samples in the window".to_owned(),
                    }
                } else {
                    let sum: f64 = rates.into_iter().flatten().sum();
                    SloResult {
                        name: name.clone(),
                        passed: (*min..=*max).contains(&sum),
                        detail: format!(
                            "measured {}/s, want [{}/s, {}/s]",
                            fmt_rate(sum),
                            fmt_rate(*min),
                            fmt_rate(*max)
                        ),
                    }
                }
            }
            Slo::CounterZero { name, counter } => {
                let v = snapshot.counter(counter);
                SloResult {
                    name: name.clone(),
                    passed: v == 0,
                    detail: format!("{counter} = {v}"),
                }
            }
            Slo::P99Below {
                name,
                histogram,
                max_ns,
            } => match snapshot.histogram(histogram) {
                Some(h) if h.count > 0 => SloResult {
                    name: name.clone(),
                    passed: h.p99 <= *max_ns,
                    detail: format!("p99 {} ns, bound {max_ns} ns (n={})", h.p99, h.count),
                },
                _ => SloResult {
                    name: name.clone(),
                    passed: true,
                    detail: format!("{histogram} empty; bound holds vacuously"),
                },
            },
            Slo::RateRecovers {
                name,
                series,
                min,
                max,
                clear,
                within,
            } => {
                let open = *clear + *within;
                if open >= to {
                    SloResult {
                        name: name.clone(),
                        passed: false,
                        detail: format!(
                            "recovery window empty: opens at {} us, run ends at {} us",
                            open.as_nanos() / 1_000,
                            to.as_nanos() / 1_000
                        ),
                    }
                } else {
                    match sampler.window_rate(series, open, to) {
                        Some(rate) => SloResult {
                            name: name.clone(),
                            passed: (*min..=*max).contains(&rate),
                            detail: format!(
                                "recovered to {}/s over [{} us, {} us], want [{}/s, {}/s]",
                                fmt_rate(rate),
                                open.as_nanos() / 1_000,
                                to.as_nanos() / 1_000,
                                fmt_rate(*min),
                                fmt_rate(*max)
                            ),
                        },
                        None => SloResult {
                            name: name.clone(),
                            passed: false,
                            detail: format!("series {series:?} has no samples after recovery"),
                        },
                    }
                }
            }
            Slo::GaugeAtMost { name, gauge, max } => match snapshot.get(gauge) {
                Some(fv_telemetry::MetricValue::Gauge { value, .. }) => SloResult {
                    name: name.clone(),
                    passed: *value <= *max,
                    detail: format!("{gauge} = {value}, bound {max}"),
                },
                _ => SloResult {
                    name: name.clone(),
                    passed: false,
                    detail: format!("gauge {gauge:?} absent from snapshot"),
                },
            },
        })
        .collect();
    CheckReport { window, results }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::SamplerConfig;
    use fv_telemetry::Registry;

    fn us(n: u64) -> Nanos {
        Nanos::from_micros(n)
    }

    /// 8000 bits every 10 us on `bits` = 800 Mbit/s steady.
    fn steady_sampler(reg: &Registry) -> TimeSampler {
        let c = reg.counter("bits");
        let mut s = TimeSampler::new(reg, SamplerConfig::default().with_interval(us(10)));
        for i in 1..=10u64 {
            c.add(0, 8_000);
            s.advance_to(us(i * 10));
        }
        s
    }

    #[test]
    fn rate_within_band_passes_and_outside_fails() {
        let reg = Registry::new();
        let s = steady_sampler(&reg);
        let snap = reg.snapshot(us(100));
        let slos = [
            Slo::RateBetween {
                name: "in-band".into(),
                series: "bits".into(),
                min: 7.6e8,
                max: 8.4e8,
            },
            Slo::RateBetween {
                name: "too-high-band".into(),
                series: "bits".into(),
                min: 9e8,
                max: 1e9,
            },
        ];
        let report = evaluate(&slos, &s, &snap, (us(50), us(100)));
        assert!(report.results[0].passed, "{}", report.render());
        assert!(!report.results[1].passed);
        assert!(!report.passed());
        assert_eq!(report.failures(), 1);
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn missing_series_fails_rather_than_passing_vacuously() {
        let reg = Registry::new();
        let s = steady_sampler(&reg);
        let snap = reg.snapshot(us(100));
        let slos = [Slo::RateBetween {
            name: "ghost".into(),
            series: "no.such.counter".into(),
            min: 0.0,
            max: 1e12,
        }];
        let report = evaluate(&slos, &s, &snap, (us(50), us(100)));
        assert!(!report.passed());
    }

    #[test]
    fn sum_rate_adds_series() {
        let reg = Registry::new();
        let a = reg.counter("a.bits");
        let b = reg.counter("b.bits");
        let mut s = TimeSampler::new(&reg, SamplerConfig::default().with_interval(us(10)));
        for i in 1..=10u64 {
            a.add(0, 4_000);
            b.add(0, 4_000);
            s.advance_to(us(i * 10));
        }
        let snap = reg.snapshot(us(100));
        let slos = [Slo::SumRateBetween {
            name: "total".into(),
            series: vec!["a.bits".into(), "b.bits".into()],
            min: 7.6e8,
            max: 8.4e8,
        }];
        let report = evaluate(&slos, &s, &snap, (us(50), us(100)));
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn counter_zero_and_p99_assertions() {
        let reg = Registry::new();
        reg.counter("drops").add(0, 2);
        reg.histogram("lat").record(500);
        let s = TimeSampler::new(&reg, SamplerConfig::default());
        let snap = reg.snapshot(us(100));
        let slos = [
            Slo::CounterZero {
                name: "no-drops".into(),
                counter: "drops".into(),
            },
            Slo::CounterZero {
                name: "no-inversions".into(),
                counter: "inversions".into(), // absent counter reads 0
            },
            Slo::P99Below {
                name: "lat-bounded".into(),
                histogram: "lat".into(),
                max_ns: 1_000,
            },
            Slo::P99Below {
                name: "empty-hist".into(),
                histogram: "nope".into(),
                max_ns: 1,
            },
        ];
        let report = evaluate(&slos, &s, &snap, (us(0), us(100)));
        assert!(!report.results[0].passed);
        assert!(report.results[1].passed);
        assert!(report.results[2].passed);
        assert!(report.results[3].passed, "vacuous bound must hold");
    }

    #[test]
    fn rate_recovers_measures_only_the_post_settle_window() {
        let reg = Registry::new();
        let c = reg.counter("bits");
        let mut s = TimeSampler::new(&reg, SamplerConfig::default().with_interval(us(10)));
        // Degraded through 50 us (no traffic), full rate afterwards.
        for i in 1..=10u64 {
            if i > 5 {
                c.add(0, 8_000);
            }
            s.advance_to(us(i * 10));
        }
        let snap = reg.snapshot(us(100));
        let slos = [
            Slo::RateRecovers {
                name: "recovers".into(),
                series: "bits".into(),
                min: 7.6e8,
                max: 8.4e8,
                clear: us(50),
                within: us(10),
            },
            Slo::RateRecovers {
                name: "window-empty".into(),
                series: "bits".into(),
                min: 0.0,
                max: 1e12,
                clear: us(95),
                within: us(10),
            },
            Slo::RateRecovers {
                name: "ghost-series".into(),
                series: "no.such".into(),
                min: 0.0,
                max: 1e12,
                clear: us(50),
                within: us(10),
            },
        ];
        let report = evaluate(&slos, &s, &snap, (us(0), us(100)));
        assert!(report.results[0].passed, "{}", report.render());
        assert!(!report.results[1].passed, "empty recovery window must fail");
        assert!(!report.results[2].passed, "absent series must fail");
    }

    #[test]
    fn gauge_at_most_bounds_final_value_and_fails_when_absent() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.set(40);
        g.set(3);
        let s = TimeSampler::new(&reg, SamplerConfig::default());
        let snap = reg.snapshot(us(100));
        let slos = [
            Slo::GaugeAtMost {
                name: "drained".into(),
                gauge: "depth".into(),
                max: 5,
            },
            Slo::GaugeAtMost {
                name: "still-full".into(),
                gauge: "depth".into(),
                max: 2,
            },
            Slo::GaugeAtMost {
                name: "ghost".into(),
                gauge: "missing".into(),
                max: 100,
            },
        ];
        let report = evaluate(&slos, &s, &snap, (us(0), us(100)));
        assert!(report.results[0].passed, "{}", report.render());
        assert!(!report.results[1].passed);
        assert!(!report.results[2].passed, "absent gauge must fail");
    }

    #[test]
    fn report_json_shape() {
        let reg = Registry::new();
        let s = steady_sampler(&reg);
        let snap = reg.snapshot(us(100));
        let slos = [Slo::CounterZero {
            name: "z".into(),
            counter: "drops".into(),
        }];
        let report = evaluate(&slos, &s, &snap, (us(50), us(100)));
        let doc = JsonValue::parse(&report.to_json().to_pretty()).unwrap();
        assert_eq!(doc.get("passed"), Some(&JsonValue::Bool(true)));
        let results = doc.get("results").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(results[0].get("name").and_then(|v| v.as_str()), Some("z"));
    }
}
