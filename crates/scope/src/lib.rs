//! `fv-scope`: the observability layer over the FlowValve reproduction.
//!
//! fv-telemetry gives every component wait-free counters, histograms and
//! a trace ring; this crate turns those primitives into the three views
//! the paper's evaluation methodology needs:
//!
//! * [`sampler`] — a virtual-time [`TimeSampler`] driven from the event
//!   loop: every interval boundary it snapshots counter totals into a
//!   bounded ring of *delta* frames, exportable as CSV / JSONL / the
//!   Prometheus text format (`fv timeseries`).
//! * [`chrome`] — converts the per-packet stage spans the pipeline stamps
//!   (ingress → classify → sched → tm_queue → wire, plus qdisc queue
//!   sojourns and lock waits) into a Chrome-trace JSON document that
//!   `chrome://tracing` and Perfetto open directly (`fv trace`).
//! * [`check`] — declarative [`Slo`] assertions (windowed rate bands,
//!   zero-counters, p99 bounds) evaluated from sampler output, behind
//!   `fv check` and the rate-conformance tests.
//!
//! Everything here is cold-path: the hot path stays in fv-telemetry's
//! relaxed atomics; fv-scope only *reads* — at tick boundaries, or once
//! at the end of a run.

pub mod check;
pub mod chrome;
pub mod sampler;

pub use check::{evaluate, CheckReport, Slo, SloResult};
pub use chrome::{chrome_trace, latency_table};
pub use sampler::{prometheus_text, Frame, SamplerConfig, TimeSampler};
