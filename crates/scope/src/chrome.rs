//! Chrome-trace (Trace Event Format) export of the span ring.
//!
//! [`chrome_trace`] converts the registry's [`TraceEvent`] tail into a
//! JSON document `chrome://tracing` and Perfetto open directly. Span
//! kinds (the `Span*` [`TraceKind`]s, whose `at`/`b` are start and
//! duration) become `"X"` complete events, one lane (`tid`) per pipeline
//! stage, so a packet's life renders as ingress → classify → sched →
//! tm_queue → wire stacked across lanes. Blocking lock waits get their
//! own lane, and everything else (drops, refills) becomes an `"i"`
//! instant event on lane 0.
//!
//! Timestamps in the Trace Event Format are **microseconds**; virtual
//! nanoseconds are emitted as fractional µs to keep full precision.
//!
//! The document opens with `"M"` metadata records — a `process_name` for
//! the NIC and one `thread_name` per lane — so viewers label the lanes
//! (`ingress`, `classify`, …, `lock_wait`) instead of showing bare tids.

use fv_telemetry::json::JsonValue;
use fv_telemetry::span::{Stage, STAGES};
use fv_telemetry::trace::{TraceEvent, TraceKind};
use fv_telemetry::Snapshot;

/// The lane (`tid`) lock-wait events render on: one past the last stage.
const LOCK_LANE: u64 = STAGES.len() as u64;

/// Leading `"M"` metadata records: one `process_name` plus a
/// `thread_name` per stage lane and the lock lane.
pub const METADATA_RECORDS: usize = 1 + STAGES.len() + 1;

fn us(nanos: u64) -> JsonValue {
    JsonValue::Num(nanos as f64 / 1_000.0)
}

/// Converts trace events into a Chrome-trace JSON document
/// (`{"traceEvents": […], "displayTimeUnit": "ns"}`).
///
/// # Example
///
/// ```
/// use fv_scope::chrome::chrome_trace;
/// use fv_telemetry::Registry;
/// use fv_telemetry::span::{SpanRecorder, Stage};
/// use sim_core::time::Nanos;
///
/// let reg = Registry::new();
/// let spans = SpanRecorder::new(&reg);
/// spans.record(Stage::Wire, Nanos::from_nanos(100), 7, Nanos::from_nanos(1_230));
/// let doc = chrome_trace(&reg.ring().recent(16));
/// let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
/// let spans: Vec<_> = events
///     .iter()
///     .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
///     .collect();
/// assert_eq!(spans.len(), 1);
/// // Lane-naming metadata precedes the span records.
/// assert_eq!(events[0].get("ph").and_then(|p| p.as_str()), Some("M"));
/// ```
pub fn chrome_trace(events: &[TraceEvent]) -> JsonValue {
    let mut out = Vec::with_capacity(events.len() + METADATA_RECORDS);
    out.push(JsonValue::obj([
        ("name", JsonValue::Str("process_name".to_owned())),
        ("ph", JsonValue::Str("M".to_owned())),
        ("pid", JsonValue::UInt(0)),
        (
            "args",
            JsonValue::obj([("name", JsonValue::Str("flowvalve-nic".to_owned()))]),
        ),
    ]));
    let lane_name = |tid: u64, name: &str| {
        JsonValue::obj([
            ("name", JsonValue::Str("thread_name".to_owned())),
            ("ph", JsonValue::Str("M".to_owned())),
            ("pid", JsonValue::UInt(0)),
            ("tid", JsonValue::UInt(tid)),
            (
                "args",
                JsonValue::obj([("name", JsonValue::Str(name.to_owned()))]),
            ),
        ])
    };
    for stage in STAGES {
        out.push(lane_name(stage as u64, stage.name()));
    }
    out.push(lane_name(LOCK_LANE, "lock_wait"));
    for e in events {
        let json = match Stage::from_kind(e.kind) {
            Some(stage) => JsonValue::obj([
                ("name", JsonValue::Str(stage.name().to_owned())),
                ("cat", JsonValue::Str(stage.name().to_owned())),
                ("ph", JsonValue::Str("X".to_owned())),
                ("ts", us(e.at.as_nanos())),
                ("dur", us(e.b)),
                ("pid", JsonValue::UInt(0)),
                ("tid", JsonValue::UInt(stage as u64)),
                ("args", JsonValue::obj([("pkt", JsonValue::UInt(e.a))])),
            ]),
            None if e.kind == TraceKind::LockWait => JsonValue::obj([
                ("name", JsonValue::Str("lock_wait".to_owned())),
                ("cat", JsonValue::Str("lock_wait".to_owned())),
                ("ph", JsonValue::Str("X".to_owned())),
                ("ts", us(e.at.as_nanos())),
                ("dur", us(e.b)),
                ("pid", JsonValue::UInt(0)),
                ("tid", JsonValue::UInt(LOCK_LANE)),
                ("args", JsonValue::obj([("lock", JsonValue::UInt(e.a))])),
            ]),
            None => JsonValue::obj([
                ("name", JsonValue::Str(e.kind.name().to_owned())),
                ("cat", JsonValue::Str("event".to_owned())),
                ("ph", JsonValue::Str("i".to_owned())),
                ("ts", us(e.at.as_nanos())),
                ("pid", JsonValue::UInt(0)),
                ("tid", JsonValue::UInt(0)),
                ("s", JsonValue::Str("t".to_owned())),
                (
                    "args",
                    JsonValue::obj([("a", JsonValue::UInt(e.a)), ("b", JsonValue::UInt(e.b))]),
                ),
            ]),
        };
        out.push(json);
    }
    JsonValue::obj([
        ("traceEvents", JsonValue::Arr(out)),
        ("displayTimeUnit", JsonValue::Str("ns".to_owned())),
    ])
}

/// Renders the per-stage latency histograms of `snapshot` as an aligned
/// text table (`fv trace`'s on-terminal companion to the JSON file).
pub fn latency_table(snapshot: &Snapshot) -> String {
    let mut out = String::from(
        "stage        count       mean_ns        p50_ns        p99_ns        max_ns\n",
    );
    for stage in STAGES {
        let Some(h) = snapshot.histogram(stage.metric()) else {
            continue;
        };
        out.push_str(&format!(
            "{:<10} {:>7} {:>13.0} {:>13} {:>13} {:>13}\n",
            stage.name(),
            h.count,
            h.mean(),
            h.p50,
            h.p99,
            h.max
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_telemetry::span::SpanRecorder;
    use fv_telemetry::Registry;
    use sim_core::time::Nanos;

    #[test]
    fn spans_become_complete_events_with_stage_lanes() {
        let reg = Registry::new();
        let spans = SpanRecorder::new(&reg);
        spans.record(
            Stage::Ingress,
            Nanos::from_nanos(10),
            1,
            Nanos::from_nanos(5),
        );
        spans.record(
            Stage::Sched,
            Nanos::from_nanos(40),
            1,
            Nanos::from_nanos(120),
        );
        let doc = chrome_trace(&reg.ring().recent(16));
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        assert_eq!(events.len(), METADATA_RECORDS + 2);
        let sched = &events[METADATA_RECORDS + 1];
        assert_eq!(sched.get("name").and_then(|v| v.as_str()), Some("sched"));
        assert_eq!(sched.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(
            sched.get("tid").and_then(JsonValue::as_u64),
            Some(Stage::Sched as u64)
        );
        assert_eq!(sched.get("ts").and_then(|v| v.as_f64()), Some(0.04));
        assert_eq!(sched.get("dur").and_then(|v| v.as_f64()), Some(0.12));
        assert_eq!(
            sched
                .get("args")
                .and_then(|a| a.get("pkt"))
                .and_then(JsonValue::as_u64),
            Some(1)
        );
    }

    #[test]
    fn lock_waits_get_their_own_lane() {
        let reg = Registry::new();
        reg.ring()
            .record(Nanos::from_nanos(5), TraceKind::LockWait, 3, 250);
        let doc = chrome_trace(&reg.ring().recent(4));
        let e = &doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap()[METADATA_RECORDS];
        assert_eq!(e.get("name").and_then(|v| v.as_str()), Some("lock_wait"));
        assert_eq!(e.get("tid").and_then(JsonValue::as_u64), Some(LOCK_LANE));
        assert_eq!(e.get("dur").and_then(|v| v.as_f64()), Some(0.25));
    }

    #[test]
    fn non_span_events_become_instants() {
        let reg = Registry::new();
        reg.ring()
            .record(Nanos::from_nanos(9), TraceKind::TailDrop, 2, 64);
        let doc = chrome_trace(&reg.ring().recent(4));
        let e = &doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap()[METADATA_RECORDS];
        assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("i"));
        assert_eq!(e.get("name").and_then(|v| v.as_str()), Some("tail_drop"));
    }

    #[test]
    fn document_roundtrips_through_the_parser() {
        let reg = Registry::new();
        let spans = SpanRecorder::new(&reg);
        for i in 0..10 {
            spans.record(
                Stage::Wire,
                Nanos::from_nanos(i * 100),
                i,
                Nanos::from_nanos(99),
            );
        }
        let doc = chrome_trace(&reg.ring().recent(32));
        let text = doc.to_pretty();
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(
            parsed
                .get("traceEvents")
                .and_then(|e| e.as_arr())
                .map(|a| a.len()),
            Some(METADATA_RECORDS + 10)
        );
        assert_eq!(
            parsed.get("displayTimeUnit").and_then(|v| v.as_str()),
            Some("ns")
        );
    }

    #[test]
    fn metadata_names_every_lane() {
        let doc = chrome_trace(&[]);
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        assert_eq!(events.len(), METADATA_RECORDS);
        assert_eq!(
            events[0].get("name").and_then(|v| v.as_str()),
            Some("process_name")
        );
        assert_eq!(
            events[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(|v| v.as_str()),
            Some("flowvalve-nic")
        );
        for (i, stage) in STAGES.iter().enumerate() {
            let e = &events[1 + i];
            assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("M"));
            assert_eq!(
                e.get("tid").and_then(JsonValue::as_u64),
                Some(*stage as u64)
            );
            assert_eq!(
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str()),
                Some(stage.name())
            );
        }
        let lock = &events[METADATA_RECORDS - 1];
        assert_eq!(lock.get("tid").and_then(JsonValue::as_u64), Some(LOCK_LANE));
    }

    #[test]
    fn latency_table_lists_recorded_stages() {
        let reg = Registry::new();
        let spans = SpanRecorder::new(&reg);
        spans.record(
            Stage::Classify,
            Nanos::from_nanos(10),
            0,
            Nanos::from_nanos(50),
        );
        let table = latency_table(&reg.snapshot(Nanos::from_micros(1)));
        assert!(table.contains("classify"));
        assert!(table.lines().count() >= 2);
    }
}
