//! The assembled attribution profile: folded stacks, summary table, JSON.
//!
//! [`ProbeReport`] is a plain snapshot — everything is collected once at
//! the end of a run, so rendering it twice (e.g. `--folded` to a file and
//! the summary to stdout) sees identical data. All orders are
//! deterministic; with a fixed simulation seed the folded export is
//! byte-identical across runs, which `scripts/check.sh` gates on.

use fv_telemetry::registry::{MetricValue, Snapshot};
use fv_telemetry::span::STAGES;
use fv_telemetry::JsonValue;
use np_sim::cost::{AttrCell, CycleAttr, ATTR_STAGES};
use np_sim::lock::PerLockStats;
use sim_core::time::Nanos;

use crate::contention::{rank_locks, LockRank};
use crate::latency::{ClassLatency, FlowVolume, LatencyAttr, UNATTRIBUTED};

/// A queue-depth high-water mark mirrored from a registry gauge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waterline {
    /// Gauge name (e.g. `tm.fifo.backlog_bytes`, `sfq.backlog_pkts`).
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
    /// High-water mark over the run.
    pub max: u64,
}

/// The complete attribution profile of one run.
#[derive(Debug, Clone)]
pub struct ProbeReport {
    /// Simulated horizon the profile covers.
    pub horizon: Nanos,
    /// Worker rows in the cycle attribution (micro-engines).
    pub workers: usize,
    /// Non-zero cycle-attribution cells, `(worker, stage, op)` ordered.
    pub cells: Vec<AttrCell>,
    /// Top-contended locks, wait-ranked.
    pub locks: Vec<LockRank>,
    /// Per-class latency decomposition, class-ordered.
    pub classes: Vec<ClassLatency>,
    /// Heaviest flows by wire bits.
    pub top_flows: Vec<FlowVolume>,
    /// Queue-depth waterlines, name-ordered.
    pub waterlines: Vec<Waterline>,
}

/// How many heavy hitters a report keeps.
const TOP_K: usize = 10;

impl ProbeReport {
    /// Assembles a report from the run's probe handles and its final
    /// registry snapshot (the source of the waterline gauges).
    pub fn build(
        attr: &CycleAttr,
        per_lock: &[PerLockStats],
        latency: &LatencyAttr,
        snapshot: &Snapshot,
        horizon: Nanos,
    ) -> ProbeReport {
        let waterlines = snapshot
            .entries
            .iter()
            .filter(|e| e.name.contains("backlog"))
            .filter_map(|e| match e.value {
                MetricValue::Gauge { value, max } => Some(Waterline {
                    name: e.name.clone(),
                    value,
                    max,
                }),
                _ => None,
            })
            .collect();
        ProbeReport {
            horizon,
            workers: attr.workers(),
            cells: attr.cells(),
            locks: rank_locks(per_lock),
            classes: latency.class_breakdown(),
            top_flows: latency.top_flows(TOP_K),
            waterlines,
        }
    }

    /// Total attributed cycles.
    pub fn total_cycles(&self) -> u64 {
        self.cells.iter().map(|c| c.cycles).sum()
    }

    /// Cycles per attribution phase, in [`ATTR_STAGES`] order.
    pub fn cycles_by_phase(&self) -> Vec<(&'static str, u64)> {
        ATTR_STAGES
            .iter()
            .map(|s| {
                (
                    s.name(),
                    self.cells
                        .iter()
                        .filter(|c| c.stage == *s)
                        .map(|c| c.cycles)
                        .sum(),
                )
            })
            .collect()
    }

    /// Span samples per pipeline stage, summed across classes.
    pub fn span_samples(&self) -> Vec<(&'static str, u64)> {
        STAGES
            .iter()
            .map(|s| {
                (
                    s.name(),
                    self.classes
                        .iter()
                        .filter_map(|c| c.stages[*s as usize].as_ref())
                        .map(|h| h.count)
                        .sum(),
                )
            })
            .collect()
    }

    fn worker_frame(&self, worker: usize) -> String {
        if worker >= self.workers {
            "shared".to_string()
        } else {
            format!("me{worker}")
        }
    }

    /// Flamegraph-compatible folded stacks, one `frames count` line per
    /// non-zero cell: `nic;me3;sched;atomic_op 12840`. Pipe into
    /// `flamegraph.pl` / `inferno-flamegraph` as-is.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            out.push_str(&format!(
                "nic;{};{};{} {}\n",
                self.worker_frame(c.worker),
                c.stage.name(),
                c.op_name(),
                c.cycles
            ));
        }
        out
    }

    fn class_name(class: u64) -> String {
        if class == UNATTRIBUTED {
            "unlabeled".to_string()
        } else {
            format!("1:{class}")
        }
    }

    /// Human summary: cycle attribution, lock ranking, per-class latency
    /// breakdown, heavy hitters and waterlines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total = self.total_cycles().max(1);
        out.push_str(&format!(
            "fv-probe profile · horizon {} us · {} cycles attributed\n",
            self.horizon.as_nanos() / 1_000,
            self.total_cycles()
        ));

        out.push_str("\ncycles by phase\n");
        for (phase, cycles) in self.cycles_by_phase() {
            if cycles == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {phase:<12} {cycles:>12}  {:>5.1}%\n",
                cycles as f64 * 100.0 / total as f64
            ));
            for c in self.cells.iter().filter(|c| c.stage.name() == phase) {
                out.push_str(&format!(
                    "    {:<10} {:>12}  x{} ({})\n",
                    c.op_name(),
                    c.cycles,
                    c.count,
                    self.worker_frame(c.worker),
                ));
            }
        }

        out.push_str("\ntop contended locks\n");
        out.push_str("  lock   acquires  failed  contended      wait_ns      hold_ns  cont‰\n");
        for r in self.locks.iter().take(TOP_K) {
            out.push_str(&format!(
                "  {:<6} {:>8}  {:>6}  {:>9}  {:>11}  {:>11}  {:>5}\n",
                r.id.0,
                r.stats.acquires,
                r.stats.try_failed,
                r.stats.contended,
                r.stats.wait_total.as_nanos(),
                r.stats.hold_total.as_nanos(),
                r.contention_permille()
            ));
        }

        out.push_str("\nlatency by class (ns)\n");
        out.push_str("  class      stage      count       p50       p90       p99      p999\n");
        for cl in &self.classes {
            for (i, stage) in STAGES.iter().enumerate() {
                let Some(h) = &cl.stages[i] else { continue };
                out.push_str(&format!(
                    "  {:<10} {:<9} {:>6}  {:>8}  {:>8}  {:>8}  {:>8}\n",
                    Self::class_name(cl.class),
                    stage.name(),
                    h.count,
                    h.p50,
                    h.p90,
                    h.p99,
                    h.p999
                ));
            }
        }

        out.push_str("\ntop flows (wire bits)\n");
        for f in &self.top_flows {
            out.push_str(&format!(
                "  {:#018x}  {:<10} {:>14} bits (±{})  {} pkts\n",
                f.flow_hash,
                Self::class_name(f.class),
                f.wire_bits,
                f.err_bits,
                f.packets
            ));
        }

        out.push_str("\nwaterlines\n");
        for w in &self.waterlines {
            out.push_str(&format!(
                "  {:<28} {:>12} (max {})\n",
                w.name, w.value, w.max
            ));
        }
        out
    }

    /// The machine-readable profile (`fv profile --json`).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("horizon_ns", JsonValue::UInt(self.horizon.as_nanos())),
            (
                "cycles",
                JsonValue::obj([
                    ("total", JsonValue::UInt(self.total_cycles())),
                    ("workers", JsonValue::UInt(self.workers as u64)),
                    (
                        "by_phase",
                        JsonValue::obj(
                            self.cycles_by_phase()
                                .into_iter()
                                .map(|(k, v)| (k, JsonValue::UInt(v))),
                        ),
                    ),
                    (
                        "cells",
                        JsonValue::arr(self.cells.iter().map(|c| {
                            JsonValue::obj([
                                ("worker", JsonValue::Str(self.worker_frame(c.worker))),
                                ("stage", JsonValue::Str(c.stage.name().to_string())),
                                ("op", JsonValue::Str(c.op_name().to_string())),
                                ("cycles", JsonValue::UInt(c.cycles)),
                                ("count", JsonValue::UInt(c.count)),
                            ])
                        })),
                    ),
                ]),
            ),
            (
                "span_samples",
                JsonValue::obj(
                    self.span_samples()
                        .into_iter()
                        .map(|(k, v)| (k, JsonValue::UInt(v))),
                ),
            ),
            (
                "locks",
                JsonValue::arr(self.locks.iter().map(|r| {
                    JsonValue::obj([
                        ("id", JsonValue::UInt(r.id.0 as u64)),
                        ("acquires", JsonValue::UInt(r.stats.acquires)),
                        ("try_failed", JsonValue::UInt(r.stats.try_failed)),
                        ("contended", JsonValue::UInt(r.stats.contended)),
                        ("wait_ns", JsonValue::UInt(r.stats.wait_total.as_nanos())),
                        ("hold_ns", JsonValue::UInt(r.stats.hold_total.as_nanos())),
                        (
                            "contention_permille",
                            JsonValue::UInt(r.contention_permille()),
                        ),
                    ])
                })),
            ),
            (
                "latency",
                JsonValue::arr(self.classes.iter().map(|cl| {
                    JsonValue::obj([
                        ("class", JsonValue::Str(Self::class_name(cl.class))),
                        (
                            "stages",
                            JsonValue::obj(STAGES.iter().enumerate().filter_map(|(i, s)| {
                                cl.stages[i].as_ref().map(|h| {
                                    (
                                        s.name(),
                                        JsonValue::obj([
                                            ("count", JsonValue::UInt(h.count)),
                                            ("p50", JsonValue::UInt(h.p50)),
                                            ("p90", JsonValue::UInt(h.p90)),
                                            ("p99", JsonValue::UInt(h.p99)),
                                            ("p999", JsonValue::UInt(h.p999)),
                                            ("max", JsonValue::UInt(h.max)),
                                        ]),
                                    )
                                })
                            })),
                        ),
                    ])
                })),
            ),
            (
                "top_flows",
                JsonValue::arr(self.top_flows.iter().map(|f| {
                    JsonValue::obj([
                        (
                            "flow_hash",
                            JsonValue::Str(format!("{:#018x}", f.flow_hash)),
                        ),
                        ("class", JsonValue::Str(Self::class_name(f.class))),
                        ("wire_bits", JsonValue::UInt(f.wire_bits)),
                        ("err_bits", JsonValue::UInt(f.err_bits)),
                        ("packets", JsonValue::UInt(f.packets)),
                    ])
                })),
            ),
            (
                "waterlines",
                JsonValue::arr(self.waterlines.iter().map(|w| {
                    JsonValue::obj([
                        ("name", JsonValue::Str(w.name.clone())),
                        ("value", JsonValue::UInt(w.value)),
                        ("max", JsonValue::UInt(w.max)),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use fv_telemetry::span::{SpanSink, Stage};
    use fv_telemetry::Registry;
    use np_sim::config::CycleCosts;
    use np_sim::cost::{AttrStage, CostMeter, Op};
    use np_sim::lock::{LockId, LockTable};

    use super::*;

    fn sample_report() -> ProbeReport {
        let attr = Arc::new(CycleAttr::new(2));
        let mut m = CostMeter::new(CycleCosts::agilio());
        m.attach_attr(Arc::clone(&attr));
        m.set_worker(0);
        m.set_stage(AttrStage::Parse);
        m.charge(Op::Parse);
        m.set_stage(AttrStage::Sched);
        m.charge_n(Op::AtomicOp, 2);

        let mut locks = LockTable::new(2);
        locks.acquire(LockId(1), Nanos::ZERO, Nanos::from_nanos(100));
        locks.acquire(LockId(1), Nanos::ZERO, Nanos::from_nanos(100));

        let lat = LatencyAttr::new();
        lat.classify(1, 7, 0xfeed, 12_000);
        lat.span(Stage::Sched, Nanos::ZERO, 1, Nanos::from_nanos(40));

        let reg = Registry::new();
        reg.gauge("tm.fifo.backlog_bytes").set(9_000);
        reg.gauge("tm.fifo.backlog_bytes").set(10);
        ProbeReport::build(
            &attr,
            locks.per_lock_stats(),
            &lat,
            &reg.snapshot(Nanos::from_micros(10)),
            Nanos::from_millis(1),
        )
    }

    #[test]
    fn folded_stacks_carry_every_cell() {
        let r = sample_report();
        let folded = r.folded();
        let c = CycleCosts::agilio();
        assert!(folded.contains(&format!("nic;me0;parse;parse {}\n", c.parse)));
        assert!(folded.contains(&format!("nic;me0;sched;atomic_op {}\n", 2 * c.atomic_op)));
        assert_eq!(folded.lines().count(), 2);
    }

    #[test]
    fn report_sections_and_json_agree() {
        let r = sample_report();
        assert_eq!(r.locks.len(), 1);
        assert_eq!(r.locks[0].id, LockId(1));
        assert_eq!(r.waterlines.len(), 1);
        assert_eq!(r.waterlines[0].max, 9_000);

        let doc = r.to_json();
        let by_phase = doc.get("cycles").unwrap().get("by_phase").unwrap();
        assert_eq!(
            by_phase.get("parse").unwrap().as_u64().unwrap(),
            CycleCosts::agilio().parse
        );
        assert_eq!(
            doc.get("span_samples")
                .unwrap()
                .get("sched")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        let locks = doc.get("locks").unwrap().as_arr().unwrap();
        assert_eq!(locks[0].get("wait_ns").unwrap().as_u64(), Some(100));
        let text = r.render();
        for section in [
            "cycles by phase",
            "top contended locks",
            "latency by class",
            "top flows",
            "waterlines",
        ] {
            assert!(text.contains(section), "missing section {section}");
        }
        // Round-trips through the in-tree parser.
        assert!(JsonValue::parse(&doc.to_pretty()).is_ok());
    }
}
