//! Flight recorder: the profile plus the trace ring's last words.
//!
//! When `fv check` sees an SLO violation or `fv chaos` runs fault windows,
//! the interesting state is *what the pipeline was doing right then* — the
//! attribution profile says where cycles/waits/latency went, and the
//! bounded trace ring still holds the most recent per-packet decisions.
//! [`flight_doc`] freezes both into one JSON document for post-mortem
//! analysis, the way aviation flight recorders pair instrument history
//! with the cockpit's last seconds.

use fv_telemetry::trace::TraceEvent;
use fv_telemetry::JsonValue;
use sim_core::time::Nanos;

use crate::report::ProbeReport;

/// Assembles a flight-recorder document: what triggered the dump, when,
/// the full attribution profile, and the trace-ring tail (oldest first).
pub fn flight_doc(
    trigger: &str,
    at: Nanos,
    report: &ProbeReport,
    events: &[TraceEvent],
) -> JsonValue {
    JsonValue::obj([
        ("trigger", JsonValue::Str(trigger.to_string())),
        ("at_ns", JsonValue::UInt(at.as_nanos())),
        ("profile", report.to_json()),
        (
            "trace",
            JsonValue::arr(events.iter().map(|e| {
                JsonValue::obj([
                    ("at_ns", JsonValue::UInt(e.at.as_nanos())),
                    ("kind", JsonValue::Str(e.kind.name().to_string())),
                    ("a", JsonValue::UInt(e.a)),
                    ("b", JsonValue::UInt(e.b)),
                ])
            })),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use fv_telemetry::span::Stage;
    use fv_telemetry::trace::TraceKind;
    use fv_telemetry::Registry;
    use np_sim::cost::CycleAttr;

    use super::*;
    use crate::latency::LatencyAttr;

    #[test]
    fn flight_doc_carries_profile_and_trace_tail() {
        let attr = CycleAttr::new(1);
        let lat = LatencyAttr::new();
        use fv_telemetry::span::SpanSink as _;
        lat.span(Stage::Wire, Nanos::ZERO, 1, Nanos::from_nanos(10));
        let reg = Registry::new();
        let report = ProbeReport::build(
            &attr,
            &[],
            &lat,
            &reg.snapshot(Nanos::ZERO),
            Nanos::from_micros(5),
        );
        let events = vec![TraceEvent {
            at: Nanos::from_nanos(42),
            kind: TraceKind::TailDrop,
            a: 9,
            b: 1,
        }];
        let doc = flight_doc("slo:conformance", Nanos::from_micros(5), &report, &events);
        assert_eq!(
            doc.get("trigger").unwrap().as_str(),
            Some("slo:conformance")
        );
        assert_eq!(
            doc.get("profile")
                .unwrap()
                .get("span_samples")
                .unwrap()
                .get("wire")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        let trace = doc.get("trace").unwrap().as_arr().unwrap();
        assert_eq!(trace[0].get("at_ns").unwrap().as_u64(), Some(42));
        assert_eq!(trace[0].get("kind").unwrap().as_str(), Some("tail_drop"));
        assert!(JsonValue::parse(&doc.to_compact()).is_ok());
    }
}
