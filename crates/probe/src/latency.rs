//! Per-flow-class latency attribution and heavy-hitter tracking.
//!
//! The registry's per-stage span histograms (`span.*_ns`) answer "how long
//! does each pipeline stage take" — aggregated over *all* traffic. The
//! paper's SLOs are per class, so the profiler needs the same decomposition
//! *per flow class*: [`LatencyAttr`] implements
//! [`SpanSink`](fv_telemetry::SpanSink) and, fed classification verdicts by
//! the labeling function, demultiplexes every span into an HDR-style
//! log-bucket histogram keyed by `(class, stage)`.
//!
//! It also keeps a space-saving sketch of the heaviest flows by wire bits
//! (Metwally et al.'s algorithm: bounded memory, deterministic
//! overestimation bound), which backs `fv top`.

use std::sync::Mutex;

use fv_telemetry::metrics::{Histogram, HistogramSnapshot};
use fv_telemetry::span::{SpanSink, Stage, STAGES};
use sim_core::time::Nanos;

/// The class value spans fall into before (or without) a classification
/// verdict for their packet: unlabeled bypass traffic, or ring spans whose
/// packet aged out of the bounded pkt→class table.
pub const UNATTRIBUTED: u64 = u64::MAX;

/// Slots in the bounded open-addressed pkt→class table (power of two).
const PKT_SLOTS: usize = 1 << 16;

/// Entries tracked by the heavy-hitter sketch.
const SKETCH_ENTRIES: usize = 32;

/// One tracked heavy hitter: a flow (by stable hash) and its estimated
/// wire-bit volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowVolume {
    /// The flow's stable hash ([`netstack::flow::FlowKey::stable_hash`]-
    /// compatible; the caller maps hashes back to 5-tuples).
    pub flow_hash: u64,
    /// The class the flow last resolved to ([`UNATTRIBUTED`] if none).
    pub class: u64,
    /// Estimated wire bits attributed to the flow (upper bound).
    pub wire_bits: u64,
    /// Maximum overestimation of `wire_bits` (0 = exact).
    pub err_bits: u64,
    /// Packets attributed to the flow.
    pub packets: u64,
}

/// The per-stage latency decomposition of one flow class.
#[derive(Debug, Clone)]
pub struct ClassLatency {
    /// Leaf class minor number, or [`UNATTRIBUTED`].
    pub class: u64,
    /// One histogram summary per [`Stage`], indexed by discriminant;
    /// `None` where the class never hit the stage.
    pub stages: [Option<HistogramSnapshot>; STAGES.len()],
}

impl ClassLatency {
    /// Total spans recorded for this class across all stages.
    pub fn samples(&self) -> u64 {
        self.stages.iter().flatten().map(|h| h.count).sum()
    }
}

struct SpaceSaving {
    // (flow_hash, class, bits, err, packets); kept unsorted, scanned
    // linearly — SKETCH_ENTRIES is small and this is the slow path of a
    // simulated hot path.
    entries: Vec<(u64, u64, u64, u64, u64)>,
}

impl SpaceSaving {
    fn new() -> Self {
        SpaceSaving {
            entries: Vec::with_capacity(SKETCH_ENTRIES),
        }
    }

    fn offer(&mut self, flow_hash: u64, class: u64, wire_bits: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == flow_hash) {
            e.1 = class;
            e.2 += wire_bits;
            e.4 += 1;
            return;
        }
        if self.entries.len() < SKETCH_ENTRIES {
            self.entries.push((flow_hash, class, wire_bits, 0, 1));
            return;
        }
        // Evict the minimum-volume entry; the newcomer inherits its count
        // as the overestimation bound (the space-saving invariant).
        let min = self
            .entries
            .iter_mut()
            .min_by_key(|e| (e.2, e.0))
            .expect("sketch non-empty");
        *min = (flow_hash, class, min.2 + wire_bits, min.2, 1);
    }

    fn top(&self, k: usize) -> Vec<FlowVolume> {
        let mut all: Vec<FlowVolume> = self
            .entries
            .iter()
            .map(
                |&(flow_hash, class, wire_bits, err_bits, packets)| FlowVolume {
                    flow_hash,
                    class,
                    wire_bits,
                    err_bits,
                    packets,
                },
            )
            .collect();
        // Volume descending, hash ascending: a total, deterministic order.
        all.sort_by(|a, b| {
            b.wire_bits
                .cmp(&a.wire_bits)
                .then(a.flow_hash.cmp(&b.flow_hash))
        });
        all.truncate(k);
        all
    }
}

struct Inner {
    // Open-addressed (pkt_id + 1, class) pairs; 0 marks an empty slot.
    pkt_class: Vec<(u64, u64)>,
    // (class, stage) histograms, discovered on first span.
    hists: Vec<(u64, [Option<Histogram>; STAGES.len()])>,
    sketch: SpaceSaving,
    spans: u64,
}

impl Inner {
    fn class_of(&self, pkt_id: u64) -> u64 {
        let slot = &self.pkt_class[(pkt_id as usize) & (PKT_SLOTS - 1)];
        if slot.0 == pkt_id + 1 {
            slot.1
        } else {
            UNATTRIBUTED
        }
    }

    fn hist_for(&mut self, class: u64, stage: Stage) -> &Histogram {
        let row = match self.hists.iter().position(|(c, _)| *c == class) {
            Some(i) => i,
            None => {
                self.hists.push((class, Default::default()));
                self.hists.len() - 1
            }
        };
        self.hists[row].1[stage as usize].get_or_insert_with(Histogram::new)
    }
}

/// A [`SpanSink`] that attributes every span to its packet's flow class.
///
/// Install once per registry before the run:
///
/// ```
/// use std::sync::Arc;
/// use fv_probe::latency::LatencyAttr;
/// use fv_telemetry::Registry;
///
/// let reg = Registry::new();
/// let lat = Arc::new(LatencyAttr::new());
/// assert!(reg.install_span_sink(lat.clone()));
/// ```
///
/// The interior mutex is uncontended in the single-threaded discrete-event
/// simulation; the bench suite's `span_stamp` gate measures the
/// *uninstalled* cost every packet pays.
pub struct LatencyAttr {
    inner: Mutex<Inner>,
}

impl Default for LatencyAttr {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyAttr {
    /// Creates an empty attribution sink.
    pub fn new() -> Self {
        LatencyAttr {
            inner: Mutex::new(Inner {
                pkt_class: vec![(0, 0); PKT_SLOTS],
                hists: Vec::new(),
                sketch: SpaceSaving::new(),
                spans: 0,
            }),
        }
    }

    /// Total spans attributed so far.
    pub fn span_count(&self) -> u64 {
        self.inner.lock().unwrap().spans
    }

    /// The per-stage breakdown of every class seen, sorted by class
    /// (unattributed traffic last).
    pub fn class_breakdown(&self) -> Vec<ClassLatency> {
        let inner = self.inner.lock().unwrap();
        let mut out: Vec<ClassLatency> = inner
            .hists
            .iter()
            .map(|(class, row)| ClassLatency {
                class: *class,
                stages: core::array::from_fn(|i| row[i].as_ref().map(|h| h.snapshot())),
            })
            .collect();
        out.sort_by_key(|c| c.class);
        out
    }

    /// The `k` heaviest flows by estimated wire bits.
    pub fn top_flows(&self, k: usize) -> Vec<FlowVolume> {
        self.inner.lock().unwrap().sketch.top(k)
    }
}

impl SpanSink for LatencyAttr {
    fn span(&self, stage: Stage, _start: Nanos, pkt_id: u64, dur: Nanos) {
        let mut inner = self.inner.lock().unwrap();
        inner.spans += 1;
        let class = inner.class_of(pkt_id);
        inner.hist_for(class, stage).record(dur.as_nanos());
    }

    fn classify(&self, pkt_id: u64, class: u64, flow_hash: u64, wire_bits: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.pkt_class[(pkt_id as usize) & (PKT_SLOTS - 1)] = (pkt_id + 1, class);
        inner.sketch.offer(flow_hash, class, wire_bits);
    }
}

impl core::fmt::Debug for LatencyAttr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LatencyAttr")
            .field("spans", &self.span_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_attribute_to_the_packets_class() {
        let lat = LatencyAttr::new();
        lat.classify(10, 7, 0xabc, 8_000);
        lat.span(Stage::Classify, Nanos::ZERO, 10, Nanos::from_nanos(50));
        lat.span(Stage::Sched, Nanos::ZERO, 10, Nanos::from_nanos(30));
        // Packet 11 was never classified: unattributed bucket.
        lat.span(Stage::Wire, Nanos::ZERO, 11, Nanos::from_nanos(900));

        let classes = lat.class_breakdown();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].class, 7);
        assert_eq!(classes[0].samples(), 2);
        let sched = classes[0].stages[Stage::Sched as usize].unwrap();
        assert_eq!(sched.count, 1);
        assert_eq!(sched.max, 30);
        assert!(classes[0].stages[Stage::Wire as usize].is_none());
        assert_eq!(classes[1].class, UNATTRIBUTED);
        assert_eq!(classes[1].samples(), 1);
        assert_eq!(lat.span_count(), 3);
    }

    #[test]
    fn pkt_table_is_bounded_but_collision_safe() {
        let lat = LatencyAttr::new();
        lat.classify(5, 1, 0x1, 100);
        // Same slot (5 + PKT_SLOTS), different packet: overwrites.
        lat.classify(5 + PKT_SLOTS as u64, 2, 0x2, 100);
        lat.span(Stage::Sched, Nanos::ZERO, 5, Nanos::from_nanos(10));
        let classes = lat.class_breakdown();
        // Packet 5's entry was evicted, so its span is unattributed —
        // never misattributed to class 2.
        assert_eq!(
            classes.iter().map(|c| c.class).collect::<Vec<_>>(),
            vec![UNATTRIBUTED]
        );
    }

    #[test]
    fn sketch_tracks_heavy_hitters_with_bounded_error() {
        let lat = LatencyAttr::new();
        // One elephant and a long tail of mice, enough to force evictions.
        for i in 0..200u64 {
            lat.classify(i, 1, 100 + (i % 60), 1_000);
        }
        for i in 200..260u64 {
            lat.classify(i, 2, 999, 100_000);
        }
        let top = lat.top_flows(3);
        assert_eq!(top[0].flow_hash, 999);
        assert_eq!(top[0].class, 2);
        assert!(top[0].wire_bits >= 60 * 100_000);
        // Overestimation is bounded by the inherited minimum.
        assert!(top[0].err_bits <= top[0].wire_bits - 60 * 100_000 + 1_000 * 4);
        assert!(top.len() <= 3);
    }

    #[test]
    fn top_is_deterministic_under_ties() {
        let lat = LatencyAttr::new();
        for hash in [9u64, 3, 7] {
            lat.classify(hash, 0, hash, 500);
        }
        let top = lat.top_flows(10);
        assert_eq!(
            top.iter().map(|f| f.flow_hash).collect::<Vec<_>>(),
            vec![3, 7, 9]
        );
    }
}
