//! Bench-result comparator: the perf-regression gate.
//!
//! `scripts/bench.sh` serializes every Criterion group into a
//! `BENCH_<tag>.json` document whose bench entries carry an `ns_per_iter`
//! field. [`diff_docs`] compares two such documents and flags entries whose
//! per-iteration time regressed past a tolerance — the check behind
//! `fv bench-diff` and the opt-in `FV_BENCH_GATE` in `scripts/check.sh`
//! (acceptance: `sched_function/instrumented_threads` and
//! `span_stamp/record` within 10% of BENCH_pr4.json).

use fv_telemetry::JsonValue;

/// One compared bench entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiff {
    /// Bench key, e.g. `sched_function/instrumented_threads/8`.
    pub key: String,
    /// Baseline ns/iter.
    pub base_ns: f64,
    /// Fresh-run ns/iter.
    pub new_ns: f64,
    /// Relative change in percent (positive = slower).
    pub delta_pct: f64,
    /// Whether the slowdown exceeds the tolerance.
    pub regressed: bool,
}

/// The outcome of comparing two bench documents.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Compared entries, sorted by key.
    pub diffs: Vec<BenchDiff>,
    /// Baseline keys with no counterpart in the fresh run.
    pub missing: Vec<String>,
    /// The tolerance the comparison ran with, in percent.
    pub tolerance_pct: f64,
}

impl DiffReport {
    /// Entries that regressed past tolerance.
    pub fn regressions(&self) -> Vec<&BenchDiff> {
        self.diffs.iter().filter(|d| d.regressed).collect()
    }

    /// Whether the gate passes: no regressions and nothing missing.
    pub fn passed(&self) -> bool {
        self.regressions().is_empty() && self.missing.is_empty()
    }

    /// Aligned table, one row per compared bench.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bench diff (tolerance {:.1}%)\n",
            self.tolerance_pct
        ));
        let width = self.diffs.iter().map(|d| d.key.len()).max().unwrap_or(4);
        for d in &self.diffs {
            out.push_str(&format!(
                "  {:<width$}  {:>10.2} -> {:>10.2} ns/iter  {:>+7.2}%  {}\n",
                d.key,
                d.base_ns,
                d.new_ns,
                d.delta_pct,
                if d.regressed { "REGRESSED" } else { "ok" },
            ));
        }
        for m in &self.missing {
            out.push_str(&format!("  {m:<width$}  MISSING from fresh run\n"));
        }
        out.push_str(if self.passed() {
            "PASS: within tolerance\n"
        } else {
            "FAIL: perf regression\n"
        });
        out
    }

    /// Machine-readable form.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("tolerance_pct", JsonValue::Num(self.tolerance_pct)),
            ("passed", JsonValue::Bool(self.passed())),
            (
                "diffs",
                JsonValue::arr(self.diffs.iter().map(|d| {
                    JsonValue::obj([
                        ("key", JsonValue::Str(d.key.clone())),
                        ("base_ns", JsonValue::Num(d.base_ns)),
                        ("new_ns", JsonValue::Num(d.new_ns)),
                        ("delta_pct", JsonValue::Num(d.delta_pct)),
                        ("regressed", JsonValue::Bool(d.regressed)),
                    ])
                })),
            ),
            (
                "missing",
                JsonValue::arr(self.missing.iter().map(|m| JsonValue::Str(m.clone()))),
            ),
        ])
    }
}

fn ns_per_iter(doc: &JsonValue, key: &str) -> Option<f64> {
    doc.get(key)?.get("ns_per_iter")?.as_f64()
}

/// Compares two `BENCH_*.json` documents.
///
/// Bench entries are the top-level object members carrying an
/// `ns_per_iter` field (underscore-prefixed metadata and figure tables are
/// ignored). When `only` is non-empty, just the keys starting with one of
/// its prefixes are compared — the CI gate pins the two acceptance benches
/// without tripping on noisier groups.
///
/// # Errors
///
/// Returns a message when either document is not a JSON object or no keys
/// survive the filter.
pub fn diff_docs(
    new: &JsonValue,
    base: &JsonValue,
    tolerance_pct: f64,
    only: &[String],
) -> Result<DiffReport, String> {
    let JsonValue::Obj(base_entries) = base else {
        return Err("baseline is not a JSON object".to_string());
    };
    if !matches!(new, JsonValue::Obj(_)) {
        return Err("fresh run is not a JSON object".to_string());
    }
    let mut diffs = Vec::new();
    let mut missing = Vec::new();
    for (key, value) in base_entries {
        if key.starts_with('_') {
            continue;
        }
        let Some(base_ns) = value.get("ns_per_iter").and_then(JsonValue::as_f64) else {
            continue;
        };
        if !only.is_empty() && !only.iter().any(|p| key.starts_with(p.as_str())) {
            continue;
        }
        match ns_per_iter(new, key) {
            Some(new_ns) if base_ns > 0.0 => {
                let delta_pct = (new_ns - base_ns) / base_ns * 100.0;
                diffs.push(BenchDiff {
                    key: key.clone(),
                    base_ns,
                    new_ns,
                    delta_pct,
                    regressed: delta_pct > tolerance_pct,
                });
            }
            Some(_) => missing.push(key.clone()),
            None => missing.push(key.clone()),
        }
    }
    if diffs.is_empty() && missing.is_empty() {
        return Err("no comparable bench entries (wrong files or over-narrow --only?)".to_string());
    }
    diffs.sort_by(|a, b| a.key.cmp(&b.key));
    missing.sort();
    Ok(DiffReport {
        diffs,
        missing,
        tolerance_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(pairs: &[(&str, f64)]) -> JsonValue {
        JsonValue::obj(pairs.iter().map(|(k, v)| {
            (
                k.to_string(),
                JsonValue::obj([("ns_per_iter", JsonValue::Num(*v))]),
            )
        }))
    }

    #[test]
    fn flags_regressions_past_tolerance() {
        let base = doc(&[("a/1", 100.0), ("b/1", 100.0), ("c/1", 100.0)]);
        let new = doc(&[("a/1", 105.0), ("b/1", 125.0), ("c/1", 80.0)]);
        let report = diff_docs(&new, &base, 10.0, &[]).unwrap();
        assert_eq!(report.diffs.len(), 3);
        assert!(!report.passed());
        let regs = report.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "b/1");
        assert!((regs[0].delta_pct - 25.0).abs() < 1e-9);
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn only_prefix_narrows_the_gate() {
        let base = doc(&[("a/1", 100.0), ("b/1", 100.0)]);
        let new = doc(&[("a/1", 101.0), ("b/1", 900.0)]);
        let report = diff_docs(&new, &base, 10.0, &["a/".to_string()]).unwrap();
        assert_eq!(report.diffs.len(), 1);
        assert!(report.passed());
    }

    #[test]
    fn missing_entries_fail_the_gate() {
        let base = doc(&[("a/1", 100.0)]);
        let new = doc(&[("other", 1.0)]);
        let report = diff_docs(&new, &base, 10.0, &[]).unwrap();
        assert!(!report.passed());
        assert_eq!(report.missing, vec!["a/1".to_string()]);
    }

    #[test]
    fn metadata_and_tables_are_ignored() {
        let mut base = doc(&[("a/1", 100.0)]);
        if let JsonValue::Obj(o) = &mut base {
            o.push((
                "_meta".to_string(),
                JsonValue::obj([("tag", JsonValue::Str("pr4".into()))]),
            ));
            o.push(("fig13".to_string(), JsonValue::arr([])));
        }
        let report = diff_docs(&doc(&[("a/1", 100.0)]), &base, 10.0, &[]).unwrap();
        assert_eq!(report.diffs.len(), 1);
        assert!(report.passed());
    }

    #[test]
    fn rejects_non_objects_and_empty_filters() {
        assert!(diff_docs(&JsonValue::Null, &JsonValue::Null, 10.0, &[]).is_err());
        let base = doc(&[("a/1", 100.0)]);
        let new = doc(&[("a/1", 100.0)]);
        assert!(diff_docs(&new, &base, 10.0, &["zzz".to_string()]).is_err());
    }
}
