//! Lock contention attribution: per-lock hold/wait profiles.
//!
//! The simulator's [`LockTable`](np_sim::lock::LockTable) already models
//! virtual-time contention per lock; this module turns its per-lock rows
//! into a ranked profile — which class locks actually serialize the
//! scheduling function (paper Figure 7's per-class vs global-lock ablation,
//! now answerable per lock instead of in aggregate).

use np_sim::lock::{LockId, PerLockStats};
use sim_core::time::Nanos;

/// One ranked lock: its id and attribution row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockRank {
    /// The lock, indexable back into the scheduling tree's class order.
    pub id: LockId,
    /// Hold/wait attribution for the lock.
    pub stats: PerLockStats,
}

impl LockRank {
    /// Fraction of acquisition attempts that contended or failed, in
    /// permille (0 when the lock was never touched).
    pub fn contention_permille(&self) -> u64 {
        let attempts = self.stats.acquires + self.stats.try_failed;
        if attempts == 0 {
            return 0;
        }
        (self.stats.contended + self.stats.try_failed) * 1000 / attempts
    }
}

/// Ranks every touched lock by total wait (then hold, then id): the
/// top-contended list `fv profile` and `fv top` print.
pub fn rank_locks(per_lock: &[PerLockStats]) -> Vec<LockRank> {
    let mut out: Vec<LockRank> = per_lock
        .iter()
        .enumerate()
        .filter(|(_, s)| s.acquires + s.try_failed > 0)
        .map(|(i, s)| LockRank {
            id: LockId(i as u32),
            stats: *s,
        })
        .collect();
    out.sort_by(|a, b| {
        b.stats
            .wait_total
            .cmp(&a.stats.wait_total)
            .then(b.stats.hold_total.cmp(&a.stats.hold_total))
            .then(a.id.0.cmp(&b.id.0))
    });
    out
}

/// Total wait across all ranked locks.
pub fn total_wait(ranked: &[LockRank]) -> Nanos {
    ranked.iter().map(|r| r.stats.wait_total).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(acquires: u64, try_failed: u64, contended: u64, wait: u64, hold: u64) -> PerLockStats {
        PerLockStats {
            acquires,
            try_failed,
            contended,
            wait_total: Nanos::from_nanos(wait),
            hold_total: Nanos::from_nanos(hold),
        }
    }

    #[test]
    fn ranks_by_wait_then_hold_and_skips_untouched() {
        let rows = vec![
            row(10, 0, 1, 50, 500),
            row(0, 0, 0, 0, 0), // never touched: dropped
            row(5, 2, 3, 900, 200),
            row(8, 0, 0, 50, 900), // ties lock 0 on wait, wins on hold
        ];
        let ranked = rank_locks(&rows);
        assert_eq!(
            ranked.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![LockId(2), LockId(3), LockId(0)]
        );
        assert_eq!(total_wait(&ranked), Nanos::from_nanos(1_000));
    }

    #[test]
    fn contention_permille() {
        let r = LockRank {
            id: LockId(0),
            stats: row(6, 2, 2, 100, 100),
        };
        // (2 contended + 2 failed) / 8 attempts = 500‰.
        assert_eq!(r.contention_permille(), 500);
        let idle = LockRank {
            id: LockId(1),
            stats: PerLockStats::default(),
        };
        assert_eq!(idle.contention_permille(), 0);
    }
}
