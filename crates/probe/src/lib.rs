//! `fv-probe`: cycle / contention / latency attribution for FlowValve.
//!
//! The paper's core claim is that the whole scheduling pipeline fits an
//! NP's per-packet cycle budget. The telemetry stack (fv-telemetry,
//! fv-scope) says *how much* — counters, rate windows, span durations —
//! but tuning needs *where*: which pipeline phase burns the cycles, which
//! lock serializes the scheduling function, which flow class eats the
//! tail latency, on which micro-engine. This crate aggregates the signals
//! the stack already emits into navigable profiles:
//!
//! * [`report::ProbeReport`] — the assembled profile, exported as
//!   flamegraph folded stacks (`fv profile --folded`), a summary table, or
//!   JSON. Cycle attribution comes from
//!   [`np_sim::cost::CycleAttr`](np_sim::cost::CycleAttr) (stage × op ×
//!   worker cells folded by the cost meter), contention from the lock
//!   table's per-lock rows ranked by [`contention::rank_locks`], and
//!   waterlines from the registry's queue-depth gauges.
//! * [`latency::LatencyAttr`] — a
//!   [`SpanSink`](fv_telemetry::SpanSink) demultiplexing every stage span
//!   into per-flow-class HDR-style histograms (p50/p90/p99/p999 per stage
//!   per class) plus a space-saving heavy-hitter sketch (`fv top`).
//! * [`diff::diff_docs`] — the `BENCH_*.json` comparator behind
//!   `fv bench-diff`, CI's perf-regression gate.
//! * [`flight::flight_doc`] — a flight-recorder dump (profile + trace-ring
//!   tail) written on SLO violations in `fv check` and fault windows in
//!   `fv chaos`.
//!
//! Everything is deterministic: cells, ranks, classes and sketch tops are
//! totally ordered, so the same simulation seed yields byte-identical
//! exports — which `scripts/check.sh` asserts.

pub mod contention;
pub mod diff;
pub mod flight;
pub mod latency;
pub mod report;

pub use contention::{rank_locks, LockRank};
pub use diff::{diff_docs, BenchDiff, DiffReport};
pub use flight::flight_doc;
pub use latency::{ClassLatency, FlowVolume, LatencyAttr, UNATTRIBUTED};
pub use report::{ProbeReport, Waterline};
