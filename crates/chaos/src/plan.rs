//! Declarative fault plans: what to break, when, and for how long.
//!
//! A [`FaultPlan`] is parsed from a small command language mirroring the
//! `fv` front end's `tc`-style dialect:
//!
//! ```text
//! chaos seed 42
//! chaos fault wire_flap  at 3ms for 2ms permille 250
//! chaos fault me_stall   at 6ms for 1ms engines 40
//! chaos fault tm_pause   at 2ms for 500us
//! chaos fault tm_drop    at 2ms for 1ms every 3
//! chaos fault lock_slow  at 1ms for 2ms permille 4000
//! chaos fault cpu_burn   at 1ms for 2ms cycles 300
//! chaos fault clock_skew at 4ms for 1ms skew 200us
//! chaos fault host_pause at 3ms for 2ms app 0
//! chaos fault vf_reset   at 3ms for 1ms vf 1
//! chaos fault reconfig   at 5ms for 2ms scale_permille 500
//! ```
//!
//! Every fault is a half-open window `[at, at + for)` on the *virtual*
//! clock. Whether a fault is active is a pure function of the current
//! simulated time, so a plan plus a seed fully determines a run — replay
//! with the same pair and every fault lands on the same packet.

use core::fmt;

use fv_telemetry::json::{JsonValue, ToJson};
use sim_core::time::Nanos;

/// What kind of failure a fault window injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Wire rate degraded to `permille`/1000 of nominal (0 clamps to 1).
    WireFlap {
        /// Remaining wire capacity in permille of the configured rate.
        permille: u64,
    },
    /// The first `engines` micro-engines cannot start new work.
    MeStall {
        /// Number of engines taken offline.
        engines: usize,
    },
    /// The traffic-manager serializer is paused; backlog accumulates.
    TmPause,
    /// Every `every`-th frame offered to the TM is corrupted and dropped.
    TmDrop {
        /// Drop period (1 drops every frame).
        every: u64,
    },
    /// Lock hold times inflated to `permille`/1000 of nominal.
    LockSlow {
        /// Hold-time scale in permille (values above 1000 inflate).
        permille: u64,
    },
    /// Every packet charged `cycles` extra instruction cycles.
    CpuBurn {
        /// Extra cycles per packet.
        cycles: u64,
    },
    /// The scheduler's clock reads `skew` ahead of the NIC clock.
    ClockSkew {
        /// Skew magnitude.
        skew: Nanos,
    },
    /// Host application `app` stops producing (models a GC pause / stall).
    HostPause {
        /// The paused application id.
        app: u16,
    },
    /// Virtual function `vf` is down; its frames die at the host boundary.
    VfReset {
        /// The VF being reset.
        vf: u8,
    },
    /// The policy is hot-reloaded with every rate/ceil scaled by
    /// `scale_permille`/1000, then restored when the window ends.
    Reconfig {
        /// Rate scale in permille applied during the window.
        scale_permille: u64,
    },
}

impl FaultKind {
    /// Stable wire name, as written in plan files.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::WireFlap { .. } => "wire_flap",
            FaultKind::MeStall { .. } => "me_stall",
            FaultKind::TmPause => "tm_pause",
            FaultKind::TmDrop { .. } => "tm_drop",
            FaultKind::LockSlow { .. } => "lock_slow",
            FaultKind::CpuBurn { .. } => "cpu_burn",
            FaultKind::ClockSkew { .. } => "clock_skew",
            FaultKind::HostPause { .. } => "host_pause",
            FaultKind::VfReset { .. } => "vf_reset",
            FaultKind::Reconfig { .. } => "reconfig",
        }
    }

    /// Stable numeric code carried in trace events (`a` field).
    pub fn code(&self) -> u64 {
        match self {
            FaultKind::WireFlap { .. } => 1,
            FaultKind::MeStall { .. } => 2,
            FaultKind::TmPause => 3,
            FaultKind::TmDrop { .. } => 4,
            FaultKind::LockSlow { .. } => 5,
            FaultKind::CpuBurn { .. } => 6,
            FaultKind::ClockSkew { .. } => 7,
            FaultKind::HostPause { .. } => 8,
            FaultKind::VfReset { .. } => 9,
            FaultKind::Reconfig { .. } => 10,
        }
    }
}

/// One scheduled fault: a kind plus its window on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Window start (inclusive).
    pub at: Nanos,
    /// Window length.
    pub dur: Nanos,
}

impl FaultSpec {
    /// Whether `now` falls inside the half-open window `[at, at + dur)`.
    pub fn active_at(&self, now: Nanos) -> bool {
        now >= self.at && now < self.end()
    }

    /// First instant *after* the fault (exclusive window end).
    pub fn end(&self) -> Nanos {
        self.at + self.dur
    }
}

/// A parse failure, pointing at the offending plan line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePlanError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParsePlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParsePlanError {}

/// A complete fault plan: the replay seed plus every scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the workload's packet-arrival randomness.
    pub seed: u64,
    /// Scheduled faults, in file order.
    pub faults: Vec<FaultSpec>,
}

/// Controllers track fault activity in a 64-bit mask, so plans are capped.
pub const MAX_FAULTS: usize = 64;

impl FaultPlan {
    /// Parses a plan script. Blank lines and `#` comments are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePlanError`] naming the first malformed line.
    pub fn parse(script: &str) -> Result<FaultPlan, ParsePlanError> {
        let mut plan = FaultPlan::default();
        for (i, raw) in script.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| ParsePlanError { line: lineno, msg };
            let toks: Vec<&str> = line.split_whitespace().collect();
            match toks.as_slice() {
                ["chaos", "seed", v] => {
                    plan.seed = v
                        .parse()
                        .map_err(|_| err(format!("bad seed {v:?}: expected a u64")))?;
                }
                ["chaos", "fault", kind, rest @ ..] => {
                    let spec = parse_fault(kind, rest).map_err(err)?;
                    plan.faults.push(spec);
                    if plan.faults.len() > MAX_FAULTS {
                        return Err(ParsePlanError {
                            line: lineno,
                            msg: format!("too many faults (max {MAX_FAULTS})"),
                        });
                    }
                }
                _ => {
                    return Err(err(format!(
                        "unrecognized command {line:?}: expected \
                         `chaos seed <n>` or `chaos fault <kind> ...`"
                    )))
                }
            }
        }
        Ok(plan)
    }

    /// Scale of the latest-starting `reconfig` fault active at `now`.
    pub fn reconfig_scale_at(&self, now: Nanos) -> Option<u64> {
        self.faults
            .iter()
            .filter(|f| f.active_at(now))
            .filter_map(|f| match f.kind {
                FaultKind::Reconfig { scale_permille } => Some((f.at, scale_permille)),
                _ => None,
            })
            .max_by_key(|&(at, _)| at)
            .map(|(_, s)| s)
    }
}

/// Parses `at <dur> for <dur> [key value ...]` plus the kind's parameters.
fn parse_fault(kind: &str, rest: &[&str]) -> Result<FaultSpec, String> {
    let mut at = None;
    let mut dur = None;
    let mut params: Vec<(&str, &str)> = Vec::new();
    let mut it = rest.iter();
    while let Some(key) = it.next() {
        let Some(val) = it.next() else {
            return Err(format!("dangling key {key:?}: expected a value"));
        };
        match *key {
            "at" => at = Some(parse_duration(val)?),
            "for" => dur = Some(parse_duration(val)?),
            k => params.push((k, val)),
        }
    }
    let at = at.ok_or_else(|| format!("fault {kind:?} missing `at <time>`"))?;
    let dur = dur.ok_or_else(|| format!("fault {kind:?} missing `for <duration>`"))?;
    if dur == Nanos::ZERO {
        return Err(format!("fault {kind:?} has zero duration"));
    }

    let one = |name: &str| -> Result<&str, String> {
        match params.as_slice() {
            [(k, v)] if *k == name => Ok(v),
            [] => Err(format!("fault {kind:?} missing `{name} <value>`")),
            other => Err(format!(
                "fault {kind:?} takes only `{name}`; got {:?}",
                other.iter().map(|(k, _)| *k).collect::<Vec<_>>()
            )),
        }
    };
    let parse_u64 = |name: &str| -> Result<u64, String> {
        let v = one(name)?;
        v.parse()
            .map_err(|_| format!("bad {name} {v:?}: expected an integer"))
    };

    let kind = match kind {
        "wire_flap" => FaultKind::WireFlap {
            permille: parse_u64("permille")?,
        },
        "me_stall" => FaultKind::MeStall {
            engines: parse_u64("engines")? as usize,
        },
        "tm_pause" => {
            if let [(k, _), ..] = params.as_slice() {
                return Err(format!("fault \"tm_pause\" takes no parameter {k:?}"));
            }
            FaultKind::TmPause
        }
        "tm_drop" => {
            let every = parse_u64("every")?;
            if every == 0 {
                return Err("bad every 0: must be at least 1".into());
            }
            FaultKind::TmDrop { every }
        }
        "lock_slow" => FaultKind::LockSlow {
            permille: parse_u64("permille")?,
        },
        "cpu_burn" => FaultKind::CpuBurn {
            cycles: parse_u64("cycles")?,
        },
        "clock_skew" => FaultKind::ClockSkew {
            skew: parse_duration(one("skew")?)?,
        },
        "host_pause" => FaultKind::HostPause {
            app: parse_u64("app")? as u16,
        },
        "vf_reset" => FaultKind::VfReset {
            vf: parse_u64("vf")? as u8,
        },
        "reconfig" => {
            let scale_permille = parse_u64("scale_permille")?;
            if scale_permille == 0 {
                return Err("bad scale_permille 0: must be at least 1".into());
            }
            FaultKind::Reconfig { scale_permille }
        }
        other => {
            return Err(format!(
                "unknown fault kind {other:?} (expected wire_flap, me_stall, \
                 tm_pause, tm_drop, lock_slow, cpu_burn, clock_skew, \
                 host_pause, vf_reset or reconfig)"
            ))
        }
    };
    Ok(FaultSpec { kind, at, dur })
}

/// Parses `250ns` / `100us` / `3ms` / `1s` (integer value, required unit).
fn parse_duration(s: &str) -> Result<Nanos, String> {
    let split = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    let (num, unit) = s.split_at(split);
    let n: u64 = num
        .parse()
        .map_err(|_| format!("bad duration {s:?}: expected <int><ns|us|ms|s>"))?;
    let scale = match unit {
        "ns" => 1,
        "us" => 1_000,
        "ms" => 1_000_000,
        "s" => 1_000_000_000,
        _ => return Err(format!("bad duration {s:?}: expected <int><ns|us|ms|s>")),
    };
    Ok(Nanos::from_nanos(n.saturating_mul(scale)))
}

impl ToJson for FaultSpec {
    fn to_json(&self) -> JsonValue {
        let mut pairs: Vec<(&str, JsonValue)> = vec![
            ("kind", JsonValue::Str(self.kind.name().into())),
            ("at_ns", JsonValue::UInt(self.at.as_nanos())),
            ("dur_ns", JsonValue::UInt(self.dur.as_nanos())),
        ];
        match self.kind {
            FaultKind::WireFlap { permille } | FaultKind::LockSlow { permille } => {
                pairs.push(("permille", JsonValue::UInt(permille)));
            }
            FaultKind::MeStall { engines } => {
                pairs.push(("engines", JsonValue::UInt(engines as u64)));
            }
            FaultKind::TmDrop { every } => pairs.push(("every", JsonValue::UInt(every))),
            FaultKind::CpuBurn { cycles } => pairs.push(("cycles", JsonValue::UInt(cycles))),
            FaultKind::ClockSkew { skew } => {
                pairs.push(("skew_ns", JsonValue::UInt(skew.as_nanos())));
            }
            FaultKind::HostPause { app } => pairs.push(("app", JsonValue::UInt(app as u64))),
            FaultKind::VfReset { vf } => pairs.push(("vf", JsonValue::UInt(vf as u64))),
            FaultKind::Reconfig { scale_permille } => {
                pairs.push(("scale_permille", JsonValue::UInt(scale_permille)));
            }
            FaultKind::TmPause => {}
        }
        JsonValue::obj(pairs)
    }
}

impl ToJson for FaultPlan {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("seed", JsonValue::UInt(self.seed)),
            ("faults", self.faults.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    #[test]
    fn parses_every_fault_kind() {
        let plan = FaultPlan::parse(
            "# demo plan\n\
             chaos seed 42\n\
             chaos fault wire_flap at 3ms for 2ms permille 250\n\
             chaos fault me_stall at 6ms for 1ms engines 40\n\
             chaos fault tm_pause at 2ms for 500us\n\
             chaos fault tm_drop at 2ms for 1ms every 3\n\
             chaos fault lock_slow at 1ms for 2ms permille 4000\n\
             chaos fault cpu_burn at 1ms for 2ms cycles 300\n\
             chaos fault clock_skew at 4ms for 1ms skew 200us\n\
             chaos fault host_pause at 3ms for 2ms app 0\n\
             chaos fault vf_reset at 3ms for 1ms vf 1\n\
             chaos fault reconfig at 5ms for 2ms scale_permille 500\n",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.faults.len(), 10);
        assert_eq!(plan.faults[0].kind, FaultKind::WireFlap { permille: 250 });
        assert_eq!(plan.faults[0].at, ms(3));
        assert_eq!(plan.faults[0].end(), ms(5));
        assert!(plan.faults[0].active_at(ms(3)));
        assert!(plan.faults[0].active_at(ms(4)));
        assert!(!plan.faults[0].active_at(ms(5)), "window is half-open");
        assert_eq!(
            plan.faults[6].kind,
            FaultKind::ClockSkew {
                skew: Nanos::from_micros(200)
            }
        );
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (script, want_line) in [
            ("chaos seed banana", 1),
            ("chaos seed 1\nchaos fault wire_flap at 1ms for 1ms", 2),
            ("chaos fault wire_flap for 1ms permille 10", 1),
            ("chaos fault wire_flap at 1ms permille 10", 1),
            ("chaos fault wire_flap at 1ms for 0ms permille 10", 1),
            ("chaos fault nosuch at 1ms for 1ms", 1),
            ("chaos fault tm_pause at 1ms for 1ms extra 3", 1),
            ("chaos fault tm_drop at 1ms for 1ms every 0", 1),
            ("totally wrong", 1),
            ("chaos fault wire_flap at 1xx for 1ms permille 10", 1),
        ] {
            let err = FaultPlan::parse(script).unwrap_err();
            assert_eq!(err.line, want_line, "script: {script:?} -> {err}");
            assert!(err.to_string().starts_with("plan line"));
        }
    }

    #[test]
    fn reconfig_scale_tracks_the_latest_active_window() {
        let plan = FaultPlan::parse(
            "chaos fault reconfig at 1ms for 4ms scale_permille 500\n\
             chaos fault reconfig at 2ms for 1ms scale_permille 250\n",
        )
        .unwrap();
        assert_eq!(plan.reconfig_scale_at(Nanos::from_micros(500)), None);
        assert_eq!(plan.reconfig_scale_at(ms(1)), Some(500));
        assert_eq!(
            plan.reconfig_scale_at(ms(2)),
            Some(250),
            "latest start wins"
        );
        assert_eq!(plan.reconfig_scale_at(ms(3)), Some(500));
        assert_eq!(plan.reconfig_scale_at(ms(5)), None);
    }

    #[test]
    fn plan_json_is_stable() {
        let plan =
            FaultPlan::parse("chaos seed 7\nchaos fault tm_drop at 1ms for 1ms every 2\n").unwrap();
        let doc = plan.to_json().to_pretty();
        let parsed = JsonValue::parse(&doc).unwrap();
        assert_eq!(parsed.get("seed"), Some(&JsonValue::UInt(7)));
        let faults = parsed.get("faults").and_then(|f| f.as_arr()).unwrap();
        assert_eq!(
            faults[0].get("kind").and_then(|k| k.as_str()),
            Some("tm_drop")
        );
        assert_eq!(faults[0].get("every"), Some(&JsonValue::UInt(2)));
    }
}
