//! The resilience harness: the `fv demo` saturation workload, faulted.
//!
//! [`run_chaos`] drives the exact workload `fv demo`/`fv check` runs — one
//! TCP flow per filter, each offered an equal slice of 1.5x line rate for
//! 10 ms on the Agilio CX 40G model — but with a [`ChaosController`]
//! installed at every hook point: the NIC's traffic manager, worker pool
//! and lock table, the FlowValve scheduler clock, and the host boundary.
//! `reconfig` faults additionally hot-reload the policy mid-run with every
//! rate scaled, restoring the original when the window closes.
//!
//! After the run, one [`fv_scope::Slo::RateRecovers`] assertion per
//! completed fault window checks that aggregate NIC throughput returned to
//! the root rate's conformance band — the paper's pitch is that the
//! offloaded scheduler keeps shaping through disturbance, and this is
//! where that claim is pinned.

use std::sync::Arc;

use flowvalve::frontend::Policy;
use flowvalve::pipeline::FlowValvePipeline;
use flowvalve::tree::TreeParams;
use fv_audit::{BucketSnapshot, ProvenanceRing, Sampler};
use fv_scope::{evaluate, CheckReport, SamplerConfig, Slo, TimeSampler};
use fv_telemetry::json::{JsonValue, ToJson};
use fv_telemetry::SpanSink;
use fv_telemetry::{Registry, Snapshot};
use hostsim::HostChaosHook;
use netstack::flow::FlowKey;
use netstack::gen::{ArrivalProcess, LineRateProcess};
use netstack::packet::{AppId, Packet, PacketIdGen, VfPort};
use np_sim::config::NicConfig;
use np_sim::cost::CycleAttr;
use np_sim::lock::PerLockStats;
use np_sim::nic::SmartNic;
use sim_core::rng::SimRng;
use sim_core::time::Nanos;
use sim_core::units::BitRate;

use crate::inject::ChaosController;
use crate::plan::FaultPlan;

/// Virtual time granted after a fault clears before recovery is judged.
pub const SETTLE: Nanos = Nanos::from_micros(500);

/// Everything a chaos run produces.
#[derive(Debug)]
pub struct ChaosReport {
    /// The executed plan.
    pub plan: FaultPlan,
    /// Simulated run length.
    pub horizon: Nanos,
    /// Number of driven flows.
    pub flows: usize,
    /// End-of-run registry snapshot (includes `chaos.*` and fault-drop
    /// counters).
    pub snapshot: Snapshot,
    /// The virtual-time sampler that watched the run, for further SLO
    /// evaluation (e.g. per-class conformance over custom windows).
    pub sampler: TimeSampler,
    /// Recovery assertions, one per completed fault window.
    pub recovery: CheckReport,
    /// Faults whose recovery could not be judged (window ends too late).
    pub unchecked: Vec<String>,
    /// Per-lock attribution rows from the run, for contention profiling
    /// (not serialized — `fv-probe` folds them into its own report).
    pub per_lock: Vec<PerLockStats>,
    /// End-of-run bucket-slab snapshot, for the fv-audit conservation
    /// ledger (not serialized — `fv audit` folds it into its own report).
    pub slab: Vec<BucketSnapshot>,
}

impl ChaosReport {
    /// Whether every recovery assertion held.
    pub fn passed(&self) -> bool {
        self.recovery.passed()
    }

    /// Renders a terminal summary: injections, fault drops, recovery.
    pub fn render(&self) -> String {
        let snap = &self.snapshot;
        let mut out = format!(
            "chaos: {} ms horizon, {} flows, {} faults planned (seed {})\n",
            self.horizon.as_nanos() / 1_000_000,
            self.flows,
            self.plan.faults.len(),
            self.plan.seed,
        );
        for f in &self.plan.faults {
            out.push_str(&format!(
                "  fault {:<10} [{} us, {} us)\n",
                f.kind.name(),
                f.at.as_nanos() / 1_000,
                f.end().as_nanos() / 1_000,
            ));
        }
        out.push_str(&format!(
            "injected {} cleared {} | tm fault-drops {} host-skipped {}\n\n",
            snap.counter("chaos.faults_injected"),
            snap.counter("chaos.faults_cleared"),
            snap.counter("tm.fifo.fault_drops"),
            snap.counter("chaos.host_skipped"),
        ));
        for note in &self.unchecked {
            out.push_str(&format!("{note}\n"));
        }
        out.push_str(&self.recovery.render());
        out
    }
}

impl ToJson for ChaosReport {
    fn to_json(&self) -> JsonValue {
        let snap = &self.snapshot;
        JsonValue::obj([
            ("plan", self.plan.to_json()),
            ("horizon_ns", JsonValue::UInt(self.horizon.as_nanos())),
            ("flows", JsonValue::UInt(self.flows as u64)),
            (
                "chaos",
                JsonValue::obj([
                    (
                        "faults_injected",
                        JsonValue::UInt(snap.counter("chaos.faults_injected")),
                    ),
                    (
                        "faults_cleared",
                        JsonValue::UInt(snap.counter("chaos.faults_cleared")),
                    ),
                    (
                        "tm_fault_drops",
                        JsonValue::UInt(snap.counter("tm.fifo.fault_drops")),
                    ),
                    (
                        "nic_fault_drops",
                        JsonValue::UInt(snap.counter("nic.fault_drops")),
                    ),
                    (
                        "host_skipped",
                        JsonValue::UInt(snap.counter("chaos.host_skipped")),
                    ),
                ]),
            ),
            ("recovery", self.recovery.to_json()),
            (
                "unchecked",
                JsonValue::arr(self.unchecked.iter().map(|s| JsonValue::Str(s.clone()))),
            ),
            ("passed", JsonValue::Bool(self.passed())),
            ("snapshot", self.snapshot.to_json()),
        ])
    }
}

/// Scales every class rate/ceil by `permille`/1000 (floor 1 bps).
fn scale_policy(policy: &Policy, permille: u64) -> Policy {
    let mut scaled = policy.clone();
    let scale = |r: BitRate| BitRate::from_bps((r.as_bps().saturating_mul(permille) / 1000).max(1));
    for c in &mut scaled.classes {
        c.rate = c.rate.map(scale);
        c.ceil = c.ceil.map(scale);
    }
    scaled
}

/// Runs the saturation workload under `plan` and judges recovery.
///
/// Deterministic: the same `(policy, plan)` pair produces a byte-identical
/// [`ChaosReport::to_json`] document on every run.
///
/// # Errors
///
/// Returns a message when the policy has no filters to drive or fails to
/// compile (including a mid-run `reconfig` compile failure, which aborts
/// rather than silently continuing unfaulted).
pub fn run_chaos(policy: &Policy, plan: &FaultPlan) -> Result<ChaosReport, String> {
    run_chaos_probed(policy, plan, None, None)
}

/// [`run_chaos_probed`] with sampled provenance capture attached: the
/// pipeline records every sampler-selected decision into `ring`, and the
/// report carries the end-of-run bucket-slab snapshot so `fv audit
/// --plan` can run the conservation ledger over a faulted run. The
/// capture is an observer — the packet-level outcome is unchanged.
pub fn run_chaos_audited(
    policy: &Policy,
    plan: &FaultPlan,
    attr: Option<Arc<CycleAttr>>,
    sink: Option<Arc<dyn SpanSink>>,
    audit: Option<(Arc<ProvenanceRing>, Sampler)>,
) -> Result<ChaosReport, String> {
    run_chaos_inner(policy, plan, attr, sink, audit)
}

/// [`run_chaos`] with attribution probes attached: `attr` receives every
/// cycle charge (stage × op × worker) and `sink` every span stamp and
/// classification verdict. Both are observers — the packet-level outcome
/// of the run is identical with or without them, so a probed run still
/// replays byte-identically.
pub fn run_chaos_probed(
    policy: &Policy,
    plan: &FaultPlan,
    attr: Option<Arc<CycleAttr>>,
    sink: Option<Arc<dyn SpanSink>>,
) -> Result<ChaosReport, String> {
    run_chaos_inner(policy, plan, attr, sink, None)
}

fn run_chaos_inner(
    policy: &Policy,
    plan: &FaultPlan,
    attr: Option<Arc<CycleAttr>>,
    sink: Option<Arc<dyn SpanSink>>,
    audit: Option<(Arc<ProvenanceRing>, Sampler)>,
) -> Result<ChaosReport, String> {
    let cfg = NicConfig::agilio_cx_40g();
    let mut pipeline = FlowValvePipeline::compile(policy, TreeParams::default(), &cfg)
        .map_err(|e| e.to_string())?;
    let tree = pipeline.tree().clone();
    let line = cfg.line_rate;
    let framing = cfg.framing;

    let registry = Registry::with_ring_capacity(4096);
    if let Some(sink) = sink {
        registry.install_span_sink(sink);
    }
    let controller = Arc::new(ChaosController::new(plan.clone(), &registry));
    let host_skipped = registry.counter("chaos.host_skipped");
    pipeline.install_chaos_hook(controller.clone());
    let mut nic = SmartNic::with_registry(cfg.clone(), Box::new(pipeline), &registry);
    if let Some(attr) = attr {
        nic.attach_probe(attr);
    }
    if let Some(p) = nic.decider_as::<FlowValvePipeline>() {
        p.attach_telemetry(&registry);
        if let Some((ring, sampler)) = &audit {
            p.attach_auditor(ring.clone(), *sampler);
        }
    }
    nic.install_fault_injector(controller.clone());
    let mut sampler = TimeSampler::new(
        &registry,
        SamplerConfig::default().with_interval(Nanos::from_micros(100)),
    );

    // One flow per filter, exactly as `fv demo` builds them.
    let mut flows: Vec<(FlowKey, VfPort)> = Vec::new();
    for (i, f) in policy.filters.iter().enumerate() {
        let m = &f.matcher;
        let flow = FlowKey::tcp(
            [10, 0, 0, 10 + i as u8],
            m.src_port.unwrap_or(41_000 + i as u16),
            [10, 0, 255, 1],
            m.dst_port.unwrap_or(5_000 + i as u16),
        );
        flows.push((flow, m.vf.unwrap_or(VfPort(i as u8))));
    }
    if flows.is_empty() {
        return Err("no filters to drive".into());
    }

    let horizon = Nanos::from_millis(10);
    let mut rng = SimRng::seed(plan.seed);
    let mut ids = PacketIdGen::new();
    let offered = line.scaled(3, 2 * flows.len() as u64);
    let mut gens: Vec<LineRateProcess> = flows
        .iter()
        .map(|_| LineRateProcess::new(offered, 1518, framing))
        .collect();
    let mut next: Vec<Nanos> = gens
        .iter_mut()
        .map(|g| Nanos::ZERO + g.next_arrival(&mut rng).0)
        .collect();

    // `reconfig` faults hot-reload the policy; track the applied scale so
    // each window reloads exactly once on entry and once on exit.
    let mut applied_scale: Option<u64> = None;

    loop {
        let (idx, &t) = next
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .expect("flows is non-empty");
        if t >= horizon {
            break;
        }
        sampler.advance_to(t);
        controller.note_transitions(t);

        let want_scale = plan.reconfig_scale_at(t);
        if want_scale != applied_scale {
            let target = match want_scale {
                Some(p) => scale_policy(policy, p),
                None => policy.clone(),
            };
            let p = nic
                .decider_as::<FlowValvePipeline>()
                .expect("chaos harness always runs the FlowValve pipeline");
            p.reload(&target, TreeParams::default(), &cfg)
                .map_err(|e| format!("reconfig fault failed to compile: {e}"))?;
            applied_scale = want_scale;
        }

        let (flow, vf) = flows[idx];
        let app = AppId(idx as u16);
        // Host-side faults act before the NIC ever sees the frame: a
        // paused app offers nothing, a reset VF's frames die at the edge.
        let host_blocked =
            controller.app_paused_until(app, t).is_some() || controller.vf_down(vf, t);
        if host_blocked {
            ids.next_id(); // keep the packet-id stream identical either way
            host_skipped.incr(0);
        } else {
            let pkt = Packet::new(ids.next_id(), flow, 1518, app, vf, t);
            let _ = nic.rx(&pkt, t);
        }
        next[idx] = t + gens[idx].next_arrival(&mut rng).0;
    }
    sampler.advance_to(horizon);
    controller.note_transitions(horizon);
    nic.sync_gauges(horizon);
    if let Some(p) = nic.decider_as::<FlowValvePipeline>() {
        p.sync_gauges(horizon);
    }
    // How much is still queued on the wire when the run ends — after the
    // last fault clears this should have drained back to (near) zero.
    registry
        .gauge("chaos.tm_backlog_bytes")
        .set(nic.tm_backlog_bytes(horizon));

    // One recovery assertion per fault window that ends early enough to
    // observe a post-settle window: aggregate throughput back in the root
    // rate's band.
    let root_rate = tree
        .class_ids()
        .into_iter()
        .filter_map(|id| tree.spec(id))
        .find(|s| s.parent.is_none())
        .and_then(|s| s.rate);
    let mut slos = Vec::new();
    let mut unchecked = Vec::new();
    for (i, f) in plan.faults.iter().enumerate() {
        let name = format!("fault {i} ({}) recovers by +{SETTLE}", f.kind.name());
        match root_rate {
            _ if f.end() + SETTLE >= horizon => unchecked.push(format!(
                "note: fault {i} ({}) unchecked (window ends at {} us, \
                 too close to the {} ms horizon)",
                f.kind.name(),
                f.end().as_nanos() / 1_000,
                horizon.as_nanos() / 1_000_000,
            )),
            Some(rate) => slos.push(Slo::RateRecovers {
                name,
                series: "nic.tx_bits".into(),
                min: 0.70 * rate.as_bps() as f64,
                max: 1.15 * rate.as_bps() as f64,
                clear: f.end(),
                within: SETTLE,
            }),
            None => unchecked.push(format!(
                "note: fault {i} ({}) unchecked (root class carries no rate)",
                f.kind.name(),
            )),
        }
    }

    let slab = nic
        .decider_as::<FlowValvePipeline>()
        .map(|p| p.tree().slab_snapshot())
        .unwrap_or_default();
    let snapshot = registry.snapshot(horizon);
    let recovery = evaluate(&slos, &sampler, &snapshot, (Nanos::ZERO, horizon));
    Ok(ChaosReport {
        plan: plan.clone(),
        horizon,
        flows: flows.len(),
        snapshot,
        sampler,
        recovery,
        unchecked,
        per_lock: nic.per_lock_stats().to_vec(),
        slab,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICY: &str = "\
        fv qdisc add dev nic0 root handle 1: fv default 1:30\n\
        fv class add dev nic0 parent root classid 1:1 name root rate 40gbit\n\
        fv class add dev nic0 parent 1:1 classid 1:10 name kvs rate 15gbit prio 0\n\
        fv class add dev nic0 parent 1:1 classid 1:20 name web rate 15gbit prio 1\n\
        fv class add dev nic0 parent 1:1 classid 1:30 name bulk rate 10gbit prio 2\n\
        fv filter add dev nic0 match ip dport 5001 flowid 1:10\n\
        fv filter add dev nic0 match ip dport 5002 flowid 1:20\n\
        fv filter add dev nic0 match ip dport 5003 flowid 1:30\n";

    #[test]
    fn empty_plan_runs_clean_and_passes() {
        let policy = Policy::parse(POLICY).unwrap();
        let plan = FaultPlan {
            seed: 1,
            ..FaultPlan::default()
        };
        let report = run_chaos(&policy, &plan).unwrap();
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.snapshot.counter("chaos.faults_injected"), 0);
        assert_eq!(report.snapshot.counter("tm.fifo.fault_drops"), 0);
        assert_eq!(report.snapshot.counter("nic.fault_drops"), 0);
        assert_eq!(report.snapshot.counter("chaos.host_skipped"), 0);
        assert!(report.snapshot.counter("nic.tx_packets") > 0);
    }

    #[test]
    fn wire_flap_is_injected_counted_and_recovered_from() {
        let policy = Policy::parse(POLICY).unwrap();
        let plan = FaultPlan::parse(
            "chaos seed 1\n\
             chaos fault wire_flap at 3ms for 2ms permille 250\n",
        )
        .unwrap();
        let report = run_chaos(&policy, &plan).unwrap();
        assert_eq!(report.snapshot.counter("chaos.faults_injected"), 1);
        assert_eq!(report.snapshot.counter("chaos.faults_cleared"), 1);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.recovery.results.len(), 1);
    }

    #[test]
    fn late_fault_is_reported_unchecked_not_failed() {
        let policy = Policy::parse(POLICY).unwrap();
        let plan = FaultPlan::parse("chaos fault wire_flap at 9ms for 1ms permille 500\n").unwrap();
        let report = run_chaos(&policy, &plan).unwrap();
        assert!(report.recovery.results.is_empty());
        assert_eq!(report.unchecked.len(), 1);
        assert!(report.passed(), "no judgeable window means a pass");
        assert!(report.render().contains("unchecked"));
    }
}
