//! The [`ChaosController`]: one object that answers every hook point.
//!
//! A single `Arc<ChaosController>` is installed into the NIC model (as an
//! [`np_sim::FaultInjector`]), the FlowValve pipeline (as a
//! [`flowvalve::pipeline::SchedChaosHook`]) and the host engine (as a
//! [`hostsim::HostChaosHook`]). Each hook answers from the fault plan and
//! the *current virtual time* only, so a faulted run is a pure function of
//! `(plan, seed)` — replayable byte-for-byte.
//!
//! The controller also owns the subsystem's observability: it counts
//! injections/recoveries into `chaos.*` metrics and stamps
//! [`TraceKind::FaultInject`]/[`TraceKind::FaultClear`] events into the
//! telemetry ring whenever a fault window opens or closes (detected by
//! [`ChaosController::note_transitions`], which the harness calls as the
//! clock advances).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flowvalve::pipeline::SchedChaosHook;
use fv_telemetry::{Counter, EventRing, Registry, TraceKind};
use hostsim::HostChaosHook;
use netstack::packet::{AppId, VfPort};
use np_sim::{FaultInjector, TmFault};
use sim_core::time::Nanos;

use crate::plan::{FaultKind, FaultPlan, MAX_FAULTS};

/// Shared fault source for every layer of the stack.
#[derive(Debug)]
pub struct ChaosController {
    plan: FaultPlan,
    /// Frames offered to the TM while a `tm_drop` window is active.
    tm_seq: AtomicU64,
    /// Bitmask of fault indices active at the last `note_transitions`.
    active_mask: AtomicU64,
    faults_injected: Arc<Counter>,
    faults_cleared: Arc<Counter>,
    ring: Arc<EventRing>,
}

impl ChaosController {
    /// Builds a controller for `plan`, wiring `chaos.faults_injected` /
    /// `chaos.faults_cleared` counters and fault trace events into
    /// `registry`.
    ///
    /// # Panics
    ///
    /// Panics if the plan holds more than [`MAX_FAULTS`] faults (the
    /// parser enforces the same cap).
    pub fn new(plan: FaultPlan, registry: &Registry) -> ChaosController {
        assert!(
            plan.faults.len() <= MAX_FAULTS,
            "fault plan exceeds {MAX_FAULTS} faults"
        );
        ChaosController {
            plan,
            tm_seq: AtomicU64::new(0),
            active_mask: AtomicU64::new(0),
            faults_injected: registry.counter("chaos.faults_injected"),
            faults_cleared: registry.counter("chaos.faults_cleared"),
            ring: registry.ring(),
        }
    }

    /// The plan this controller executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Records window transitions up to `now`: each fault that became
    /// active since the last call emits a [`TraceKind::FaultInject`] event
    /// (`a` = kind code, `b` = fault index) and bumps
    /// `chaos.faults_injected`; each that ended emits
    /// [`TraceKind::FaultClear`] and bumps `chaos.faults_cleared`.
    ///
    /// Idempotent for a given `now`; the harness calls it on every packet
    /// arrival and once more at the horizon.
    pub fn note_transitions(&self, now: Nanos) {
        let mut mask: u64 = 0;
        for (i, f) in self.plan.faults.iter().enumerate() {
            if f.active_at(now) {
                mask |= 1 << i;
            }
        }
        let prev = self.active_mask.swap(mask, Ordering::Relaxed);
        if prev == mask {
            return;
        }
        for (i, f) in self.plan.faults.iter().enumerate() {
            let bit = 1u64 << i;
            if mask & bit != 0 && prev & bit == 0 {
                self.faults_injected.incr(0);
                self.ring
                    .record(now, TraceKind::FaultInject, f.kind.code(), i as u64);
            } else if mask & bit == 0 && prev & bit != 0 {
                self.faults_cleared.incr(0);
                self.ring
                    .record(now, TraceKind::FaultClear, f.kind.code(), i as u64);
            }
        }
    }

    fn active(&self, now: Nanos) -> impl Iterator<Item = &crate::plan::FaultSpec> {
        self.plan.faults.iter().filter(move |f| f.active_at(now))
    }
}

impl FaultInjector for ChaosController {
    /// Deepest degradation wins when wire-flap windows overlap.
    fn wire_rate_permille(&self, now: Nanos) -> u64 {
        self.active(now)
            .filter_map(|f| match f.kind {
                FaultKind::WireFlap { permille } => Some(permille),
                _ => None,
            })
            .min()
            .unwrap_or(1000)
    }

    /// Widest stall wins; the stall lasts until the last such window ends.
    fn stalled_engines(&self, now: Nanos) -> Option<(usize, Nanos)> {
        let mut engines = 0usize;
        let mut until = Nanos::ZERO;
        for f in self.active(now) {
            if let FaultKind::MeStall { engines: k } = f.kind {
                engines = engines.max(k);
                until = until.max(f.end());
            }
        }
        (engines > 0).then_some((engines, until))
    }

    fn extra_cycles(&self, now: Nanos) -> u64 {
        self.active(now)
            .filter_map(|f| match f.kind {
                FaultKind::CpuBurn { cycles } => Some(cycles),
                _ => None,
            })
            .sum()
    }

    fn tm_fault(&self, now: Nanos, _pkt_id: u64) -> TmFault {
        let mut pause_until = None::<Nanos>;
        let mut drop_every = None::<u64>;
        for f in self.active(now) {
            match f.kind {
                FaultKind::TmPause => {
                    pause_until = Some(pause_until.map_or(f.end(), |u| u.max(f.end())));
                }
                FaultKind::TmDrop { every } => {
                    drop_every = Some(drop_every.map_or(every, |e| e.min(every)));
                }
                _ => {}
            }
        }
        if let Some(until) = pause_until {
            return TmFault::Paused { until };
        }
        if let Some(every) = drop_every {
            // Counting only frames offered during a window keeps replay
            // exact: the n-th in-window frame drops, whichever packet
            // that happens to be.
            let seq = self.tm_seq.fetch_add(1, Ordering::Relaxed);
            if seq.is_multiple_of(every) {
                return TmFault::CorruptDrop;
            }
        }
        TmFault::None
    }

    fn lock_hold_permille(&self, now: Nanos) -> u64 {
        self.active(now)
            .filter_map(|f| match f.kind {
                FaultKind::LockSlow { permille } => Some(permille),
                _ => None,
            })
            .max()
            .unwrap_or(1000)
    }
}

impl SchedChaosHook for ChaosController {
    /// Largest active skew wins.
    fn sched_clock_skew(&self, now: Nanos) -> Nanos {
        self.active(now)
            .filter_map(|f| match f.kind {
                FaultKind::ClockSkew { skew } => Some(skew),
                _ => None,
            })
            .max()
            .unwrap_or(Nanos::ZERO)
    }
}

impl HostChaosHook for ChaosController {
    fn app_paused_until(&self, app: AppId, now: Nanos) -> Option<Nanos> {
        self.active(now)
            .filter_map(|f| match f.kind {
                FaultKind::HostPause { app: a } if AppId(a) == app => Some(f.end()),
                _ => None,
            })
            .max()
    }

    fn vf_down(&self, vf: VfPort, now: Nanos) -> bool {
        self.active(now).any(|f| match f.kind {
            FaultKind::VfReset { vf: v } => VfPort(v) == vf,
            _ => false,
        })
    }
}

/// Convenience: one `Arc` usable at every hook point.
pub fn controller(plan: FaultPlan, registry: &Registry) -> Arc<ChaosController> {
    Arc::new(ChaosController::new(plan, registry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultSpec;

    fn us(n: u64) -> Nanos {
        Nanos::from_micros(n)
    }

    fn plan_of(faults: Vec<FaultSpec>) -> FaultPlan {
        FaultPlan { seed: 1, faults }
    }

    #[test]
    fn overlapping_windows_compose() {
        let plan = plan_of(vec![
            FaultSpec {
                kind: FaultKind::WireFlap { permille: 500 },
                at: us(0),
                dur: us(100),
            },
            FaultSpec {
                kind: FaultKind::WireFlap { permille: 250 },
                at: us(50),
                dur: us(100),
            },
            FaultSpec {
                kind: FaultKind::LockSlow { permille: 2000 },
                at: us(0),
                dur: us(10),
            },
            FaultSpec {
                kind: FaultKind::CpuBurn { cycles: 100 },
                at: us(0),
                dur: us(10),
            },
            FaultSpec {
                kind: FaultKind::CpuBurn { cycles: 50 },
                at: us(0),
                dur: us(10),
            },
        ]);
        let reg = Registry::new();
        let c = ChaosController::new(plan, &reg);
        assert_eq!(c.wire_rate_permille(us(10)), 500);
        assert_eq!(c.wire_rate_permille(us(60)), 250, "deepest flap wins");
        assert_eq!(c.wire_rate_permille(us(120)), 250);
        assert_eq!(c.wire_rate_permille(us(200)), 1000, "windows cleared");
        assert_eq!(c.lock_hold_permille(us(5)), 2000);
        assert_eq!(c.lock_hold_permille(us(50)), 1000);
        assert_eq!(c.extra_cycles(us(5)), 150, "cpu burns sum");
    }

    #[test]
    fn tm_pause_outranks_drop_and_drop_counts_in_window_frames() {
        let plan = plan_of(vec![
            FaultSpec {
                kind: FaultKind::TmDrop { every: 2 },
                at: us(0),
                dur: us(100),
            },
            FaultSpec {
                kind: FaultKind::TmPause,
                at: us(40),
                dur: us(20),
            },
        ]);
        let reg = Registry::new();
        let c = ChaosController::new(plan, &reg);
        assert_eq!(c.tm_fault(us(1), 1), TmFault::CorruptDrop, "frame 0 drops");
        assert_eq!(c.tm_fault(us(2), 2), TmFault::None, "frame 1 passes");
        assert_eq!(
            c.tm_fault(us(45), 3),
            TmFault::Paused { until: us(60) },
            "pause wins over drop"
        );
        assert_eq!(c.tm_fault(us(70), 4), TmFault::CorruptDrop);
        assert_eq!(c.tm_fault(us(200), 5), TmFault::None, "after the window");
    }

    #[test]
    fn host_hooks_match_app_and_vf() {
        let plan = plan_of(vec![
            FaultSpec {
                kind: FaultKind::HostPause { app: 2 },
                at: us(10),
                dur: us(20),
            },
            FaultSpec {
                kind: FaultKind::VfReset { vf: 1 },
                at: us(10),
                dur: us(20),
            },
        ]);
        let reg = Registry::new();
        let c = ChaosController::new(plan, &reg);
        assert_eq!(c.app_paused_until(AppId(2), us(15)), Some(us(30)));
        assert_eq!(c.app_paused_until(AppId(0), us(15)), None);
        assert_eq!(c.app_paused_until(AppId(2), us(35)), None);
        assert!(c.vf_down(VfPort(1), us(15)));
        assert!(!c.vf_down(VfPort(0), us(15)));
        assert!(!c.vf_down(VfPort(1), us(35)));
    }

    #[test]
    fn transitions_emit_events_and_counters_once() {
        let plan = plan_of(vec![
            FaultSpec {
                kind: FaultKind::TmPause,
                at: us(10),
                dur: us(10),
            },
            FaultSpec {
                kind: FaultKind::MeStall { engines: 4 },
                at: us(15),
                dur: us(10),
            },
        ]);
        let reg = Registry::new();
        let c = ChaosController::new(plan, &reg);
        for t in [0, 5, 12, 12, 16, 22, 22, 30] {
            c.note_transitions(us(t));
        }
        let snap = reg.snapshot(us(30));
        assert_eq!(snap.counter("chaos.faults_injected"), 2);
        assert_eq!(snap.counter("chaos.faults_cleared"), 2);
        let events = reg.ring().recent(16);
        let injects: Vec<_> = events
            .iter()
            .filter(|e| e.kind == TraceKind::FaultInject)
            .collect();
        let clears: Vec<_> = events
            .iter()
            .filter(|e| e.kind == TraceKind::FaultClear)
            .collect();
        assert_eq!(injects.len(), 2);
        assert_eq!(clears.len(), 2);
        assert_eq!(injects[0].a, FaultKind::TmPause.code());
        assert_eq!(injects[0].b, 0, "b carries the fault index");
    }

    #[test]
    fn stall_reports_widest_window_and_latest_return() {
        let plan = plan_of(vec![
            FaultSpec {
                kind: FaultKind::MeStall { engines: 4 },
                at: us(0),
                dur: us(50),
            },
            FaultSpec {
                kind: FaultKind::MeStall { engines: 8 },
                at: us(10),
                dur: us(10),
            },
        ]);
        let reg = Registry::new();
        let c = ChaosController::new(plan, &reg);
        assert_eq!(c.stalled_engines(us(5)), Some((4, us(50))));
        assert_eq!(c.stalled_engines(us(15)), Some((8, us(50))));
        assert_eq!(c.stalled_engines(us(60)), None);
    }
}
