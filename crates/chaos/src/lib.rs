//! fv-chaos — deterministic fault injection for the FlowValve stack.
//!
//! Real SmartNIC deployments degrade in ways a clean simulation never
//! shows: links flap, micro-engines stall, traffic managers corrupt
//! frames, host applications pause. This crate schedules such failures as
//! *fault windows on the virtual clock* and drives them through hook
//! points in every layer — the NP model's traffic manager, worker pool
//! and lock table ([`np_sim::FaultInjector`]), the FlowValve scheduler
//! clock ([`flowvalve::pipeline::SchedChaosHook`]) and the host boundary
//! ([`hostsim::HostChaosHook`]) — so the *same* scheduler code runs
//! faulted or clean.
//!
//! Because every fault is a pure function of virtual time and all workload
//! randomness flows from the plan's seed, a faulted run is exactly
//! replayable: the same `(policy, plan)` pair yields a byte-identical
//! report, which is what makes a regression in recovery behaviour
//! diffable.
//!
//! - [`plan`] — the `chaos` command language and [`FaultPlan`]
//! - [`inject`] — the [`ChaosController`] answering every hook point
//! - [`harness`] — [`run_chaos`]: the `fv demo` workload, faulted, with
//!   per-fault recovery assertions from fv-scope
//!
//! # Example
//!
//! ```
//! use flowvalve::frontend::Policy;
//! use fv_chaos::{run_chaos, FaultPlan};
//!
//! let policy = Policy::parse(
//!     "fv qdisc add dev nic0 root handle 1: fv default 1:10\n\
//!      fv class add dev nic0 parent root classid 1:1 name root rate 40gbit\n\
//!      fv class add dev nic0 parent 1:1 classid 1:10 name all rate 40gbit\n\
//!      fv filter add dev nic0 match any flowid 1:10\n",
//! )
//! .unwrap();
//! let plan = FaultPlan::parse(
//!     "chaos seed 42\n\
//!      chaos fault wire_flap at 3ms for 2ms permille 250\n",
//! )
//! .unwrap();
//! let report = run_chaos(&policy, &plan).unwrap();
//! assert_eq!(report.snapshot.counter("chaos.faults_injected"), 1);
//! assert!(report.passed(), "{}", report.render());
//! ```

pub mod harness;
pub mod inject;
pub mod plan;

pub use harness::{run_chaos, run_chaos_audited, run_chaos_probed, ChaosReport, SETTLE};
pub use inject::ChaosController;
pub use plan::{FaultKind, FaultPlan, FaultSpec, ParsePlanError};
