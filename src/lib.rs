//! The FlowValve reproduction suite: a facade over the workspace crates
//! plus the integration tests (`tests/`) and runnable examples
//! (`examples/`).
//!
//! Start with the [`flowvalve`] crate for the paper's contribution, or run
//! `cargo run --example quickstart` for a guided tour. The benchmark
//! harness regenerating every figure of the paper lives in the `bench`
//! crate (`cargo run --release -p bench --bin fig11a_flowvalve_motivation`
//! and friends).

pub use classifier;
pub use flowvalve;
pub use hostsim;
pub use netstack;
pub use np_sim;
pub use qdisc;
pub use sim_core;
