//! Randomized property tests over the core data structures and invariants.
//!
//! These used to be `proptest` strategies; the workspace now builds with no
//! crates.io access, so each property is exercised over a deterministic
//! [`SimRng`]-driven case sweep instead — same invariants, reproducible
//! inputs.

use flowvalve::label::ClassId;
use flowvalve::sched::RealExec;
use flowvalve::tree::{ClassSpec, SchedulingTree, TreeParams};
use netstack::headers::{encode_frame, parse_frame};
use sim_core::event::EventQueue;
use sim_core::fixed::{TokenRate, Tokens};
use sim_core::rng::SimRng;
use sim_core::time::Nanos;
use sim_core::units::{BitRate, WireFraming};

/// Frame encode → parse is the identity on the flow tuple for any ports,
/// addresses, and representable length.
#[test]
fn frame_codec_roundtrips() {
    let mut rng = SimRng::seed(0xF0A3);
    for _ in 0..256 {
        let src: [u8; 4] = rng.next_u64().to_le_bytes()[..4].try_into().unwrap();
        let dst: [u8; 4] = rng.next_u64().to_le_bytes()[..4].try_into().unwrap();
        let sport = rng.range(0, 1 << 16) as u16;
        let dport = rng.range(0, 1 << 16) as u16;
        let len = rng.range(64, 1600) as usize;
        let dscp = rng.range(0, 64) as u8;
        let flow = netstack::flow::FlowKey::tcp(src, sport, dst, dport);
        let bytes = encode_frame(&flow, len, dscp).expect("own encoding succeeds");
        let parsed = parse_frame(&bytes).expect("own encoding parses");
        assert_eq!(parsed.flow, flow);
        assert_eq!(parsed.frame_len, len);
        assert_eq!(parsed.dscp, dscp);
    }
}

/// Fixed-point rate conversion roundtrips within 0.1% across nine decades
/// of bandwidth.
#[test]
fn token_rate_roundtrips() {
    let mut rng = SimRng::seed(0xF0A4);
    for _ in 0..500 {
        let bps = rng.range(1_000, 2_000_000_000_000);
        let r = BitRate::from_bps(bps);
        let back = TokenRate::from_bit_rate(r).to_bit_rate();
        let err = (back.as_bps() as f64 - bps as f64).abs() / bps as f64;
        assert!(err < 1e-3, "{bps} bps -> {} bps", back.as_bps());
    }
}

/// Accrual is monotonic in both rate and time.
#[test]
fn accrual_is_monotonic() {
    let mut rng = SimRng::seed(0xF0A5);
    for _ in 0..500 {
        let bps = rng.range(1_000_000, 100_000_000_000);
        let ns_a = rng.range(1, 10_000_000);
        let ns_b = rng.range(1, 10_000_000);
        let r = TokenRate::from_bit_rate(BitRate::from_bps(bps));
        let (lo, hi) = if ns_a <= ns_b {
            (ns_a, ns_b)
        } else {
            (ns_b, ns_a)
        };
        assert!(r.accrued(Nanos::from_nanos(lo)) <= r.accrued(Nanos::from_nanos(hi)));
    }
}

/// The event queue dequeues in nondecreasing time order with FIFO
/// tie-breaking, for any insertion order.
#[test]
fn event_queue_is_time_ordered() {
    let mut rng = SimRng::seed(0xF0A6);
    for _ in 0..50 {
        let n = rng.range(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.range(0, 1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Nanos::from_nanos(t), i);
        }
        let mut last_t = Nanos::ZERO;
        let mut seen_at_t: Vec<usize> = Vec::new();
        while let Some((t, i)) = q.pop() {
            assert!(t >= last_t);
            if t == last_t {
                if let Some(&prev) = seen_at_t.last() {
                    // FIFO among equal timestamps if they were inserted in
                    // index order with the same time.
                    if times[prev] == times[i] {
                        assert!(i > prev);
                    }
                }
            } else {
                seen_at_t.clear();
            }
            seen_at_t.push(i);
            last_t = t;
        }
    }
}

/// The calendar backend is pop-for-pop identical to the retained
/// `BinaryHeap` oracle — same `(time, payload)` at every dequeue and the
/// same `peek_time`, over randomized interleaved schedule/pop traces with
/// frequent timestamp ties. Pushes are kept monotone (never before the
/// last pop), which is the simulator's contract.
#[test]
fn calendar_backend_matches_heap_oracle() {
    use sim_core::event::QueueBackend;
    let mut rng = SimRng::seed(0xF0B1);
    for _ in 0..50 {
        let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
        let mut heap = EventQueue::with_backend(QueueBackend::BinaryHeap);
        let mut now = 0u64;
        let mut next_id = 0usize;
        for _ in 0..400 {
            if rng.chance(0.6) {
                // Small deltas force ties; zero delta schedules at `now`.
                let t = Nanos::from_nanos(now + rng.range(0, 8));
                cal.schedule(t, next_id);
                heap.schedule(t, next_id);
                next_id += 1;
            } else {
                assert_eq!(cal.peek_time(), heap.peek_time());
                let got = cal.pop();
                assert_eq!(got, heap.pop());
                if let Some((t, _)) = got {
                    now = t.as_nanos();
                }
            }
            assert_eq!(cal.len(), heap.len());
        }
        loop {
            assert_eq!(cal.peek_time(), heap.peek_time());
            let got = cal.pop();
            assert_eq!(got, heap.pop());
            if got.is_none() {
                break;
            }
        }
        assert_eq!(cal.dispatched(), heap.dispatched());
    }
}

/// Wire framing never reports more packets than raw bits allow, and
/// padding makes tiny frames cost the 64-byte minimum.
#[test]
fn framing_bounds() {
    let mut rng = SimRng::seed(0xF0A7);
    for _ in 0..500 {
        let rate_mbps = rng.range(1, 100_000);
        let len = rng.range(1, 9_000);
        let w = WireFraming::ETHERNET;
        let r = BitRate::from_mbps(rate_mbps);
        let pps = w.line_rate_pps(r, len);
        assert!(pps <= r.as_bps() as f64 / (64.0 * 8.0));
        assert!(w.wire_bits(len) >= (len.max(64)) * 8);
    }
}

/// Any two-level tree with arbitrary positive weights builds, and the
/// children's initial rates sum to at most the root rate.
#[test]
fn tree_initial_rates_conserve_bandwidth() {
    let mut rng = SimRng::seed(0xF0A8);
    for _ in 0..100 {
        let n = rng.range(1, 10) as usize;
        let weights: Vec<u32> = (0..n).map(|_| rng.range(1, 100) as u32).collect();
        let root_mbps = rng.range(10, 100_000);
        let root_rate = BitRate::from_mbps(root_mbps);
        let mut specs = vec![ClassSpec::new(ClassId(1), "root", None).rate(root_rate)];
        for (i, &w) in weights.iter().enumerate() {
            specs.push(
                ClassSpec::new(ClassId(10 + i as u16), format!("c{i}"), Some(ClassId(1))).weight(w),
            );
        }
        let tree = SchedulingTree::build(specs, TreeParams::default()).unwrap();
        let sum: f64 = (0..weights.len())
            .map(|i| tree.theta(ClassId(10 + i as u16)).unwrap().as_gbps())
            .sum();
        assert!(sum <= root_rate.as_gbps() * 1.001, "sum {sum}");
    }
}

/// The scheduling function never panics and never forwards more bits than
/// the root rate plus burst allows, for arbitrary interleavings of two
/// flows.
#[test]
fn schedule_respects_the_root_budget() {
    let mut rng = SimRng::seed(0xF0A9);
    for _ in 0..20 {
        let pattern: Vec<usize> = {
            let n = rng.range(50, 400) as usize;
            (0..n).map(|_| rng.index(2)).collect()
        };
        let gap_ns = rng.range(100, 5_000);
        let root = BitRate::from_gbps(1.0);
        let tree = SchedulingTree::build(
            vec![
                ClassSpec::new(ClassId(1), "root", None).rate(root),
                ClassSpec::new(ClassId(10), "a", Some(ClassId(1))),
                ClassSpec::new(ClassId(20), "b", Some(ClassId(1))),
            ],
            TreeParams::default(),
        )
        .unwrap();
        let labels = [
            tree.label(ClassId(10), &[ClassId(20)]).unwrap(),
            tree.label(ClassId(20), &[ClassId(10)]).unwrap(),
        ];
        let mut exec = RealExec;
        let mut now = Nanos::ZERO;
        let mut passed_bits = 0u64;
        const BITS: u64 = 12_000;
        for &who in &pattern {
            if tree.schedule(&labels[who], BITS, now, &mut exec).passes() {
                passed_bits += BITS;
            }
            now += Nanos::from_nanos(gap_ns);
        }
        // Budget: root rate over the elapsed time, plus initial bucket and
        // shadow bursts (buckets start full).
        let elapsed = now;
        let budget = root.bits_in(elapsed)
            + 3 * Tokens::from_bits(0)
                .max(Tokens::from_raw(
                    TokenRate::from_bit_rate(root)
                        .accrued(TreeParams::default().burst_window)
                        .raw(),
                ))
                .whole_bits()
            + 2 * 1518 * 8 * 4; // minimum burst floors
        assert!(
            passed_bits <= budget + BITS,
            "passed {passed_bits} bits > budget {budget}"
        );
    }
}

#[test]
fn tree_rejects_random_garbage_cleanly() {
    // A smoke check that invalid specs error instead of panicking.
    let bad = vec![
        ClassSpec::new(ClassId(1), "root", None), // no rate
    ];
    assert!(SchedulingTree::build(bad, TreeParams::default()).is_err());
}
