//! Runtime reconfiguration and failure injection: policy hot-reload on a
//! live NIC, ingress overload shedding, and expiry-driven recovery.

use flowvalve::frontend::Policy;
use flowvalve::label::ClassId;
use flowvalve::pipeline::FlowValvePipeline;
use flowvalve::tree::TreeParams;
use netstack::flow::FlowKey;
use netstack::packet::{AppId, Packet, VfPort};
use np_sim::config::NicConfig;
use np_sim::nic::{RxOutcome, SmartNic};
use sim_core::time::Nanos;
use sim_core::units::BitRate;

fn policy(cap_mbit: u32) -> Policy {
    Policy::parse(&format!(
        "fv qdisc add dev nic0 root handle 1: fv default 1:10\n\
         fv class add dev nic0 parent root classid 1:1 rate 10gbit\n\
         fv class add dev nic0 parent 1:1 classid 1:10 ceil {cap_mbit}mbit\n",
    ))
    .expect("policy parses")
}

/// Offers `gbps` of MTU traffic for `dur` starting at `t0`; returns the
/// delivered rate in Gbps.
fn offer(nic: &mut SmartNic, t0: Nanos, dur: Nanos, gbps: f64, id0: u64) -> f64 {
    let flow = FlowKey::tcp([10, 0, 0, 1], 40_000, [10, 0, 255, 1], 5001);
    let gap = Nanos::from_nanos((12_144.0 / gbps) as u64);
    let mut t = t0;
    let mut id = id0;
    let mut bits = 0u64;
    while t < t0 + dur {
        let pkt = Packet::new(id, flow, 1_518, AppId(0), VfPort(0), t);
        if matches!(nic.rx(&pkt, t), RxOutcome::Transmit { .. }) {
            bits += pkt.frame_bits();
        }
        id += 1;
        t += gap;
    }
    bits as f64 / dur.as_nanos() as f64
}

#[test]
fn policy_hot_reload_reshapes_live_traffic() {
    let cfg = NicConfig::agilio_cx_10g();
    let pipeline =
        FlowValvePipeline::compile(&policy(2_000), TreeParams::default(), &cfg).expect("compiles");
    let mut nic = SmartNic::new(cfg.clone(), Box::new(pipeline));

    // Phase 1: 2 Gbps ceiling.
    let dur = Nanos::from_millis(10);
    let before = offer(&mut nic, Nanos::ZERO, dur, 6.0, 0);
    assert!((1.6..2.5).contains(&before), "phase 1 rate {before}");

    // Hot-reload to a 4 Gbps ceiling without rebuilding the NIC.
    nic.decider_as::<FlowValvePipeline>()
        .expect("decider is the FlowValve pipeline")
        .reload(&policy(4_000), TreeParams::default(), &cfg)
        .expect("new policy compiles");

    // Phase 2: same offered load now passes at ~4 Gbps.
    let after = offer(&mut nic, dur, dur, 6.0, 1_000_000);
    assert!((3.3..4.6).contains(&after), "phase 2 rate {after}");
}

#[test]
fn reload_failure_keeps_the_old_policy() {
    let cfg = NicConfig::agilio_cx_10g();
    let pipeline =
        FlowValvePipeline::compile(&policy(2_000), TreeParams::default(), &cfg).expect("compiles");
    let mut nic = SmartNic::new(cfg.clone(), Box::new(pipeline));

    // An invalid policy (filter to a nonexistent class) must be rejected...
    let bad = Policy::parse(
        "fv class add dev nic0 parent root classid 1:1 rate 10gbit\n\
         fv filter add dev nic0 match any flowid 1:99\n",
    )
    .expect("parses syntactically");
    let err = nic
        .decider_as::<FlowValvePipeline>()
        .expect("decider is the FlowValve pipeline")
        .reload(&bad, TreeParams::default(), &cfg);
    assert!(err.is_err());

    // ...and the old 2 Gbps ceiling keeps being enforced.
    let rate = offer(&mut nic, Nanos::ZERO, Nanos::from_millis(10), 6.0, 0);
    assert!((1.6..2.5).contains(&rate), "old policy lost: {rate}");
}

#[test]
fn ingress_overload_sheds_load_but_keeps_line_rate() {
    // 64 B frames far beyond compute capacity: the NIC sheds at ingress
    // yet keeps transmitting at its compute bound.
    let cfg = NicConfig::agilio_cx_40g();
    let pipeline =
        FlowValvePipeline::compile(&policy(40_000), TreeParams::default(), &cfg).expect("compiles");
    let mut nic = SmartNic::new(cfg, Box::new(pipeline));
    let flow = FlowKey::tcp([10, 0, 0, 1], 40_000, [10, 0, 255, 1], 5001);
    let horizon = Nanos::from_millis(2);
    let mut t = Nanos::ZERO;
    let mut id = 0u64;
    while t < horizon {
        let pkt = Packet::new(id, flow, 64, AppId(0), VfPort(0), t);
        let _ = nic.rx(&pkt, t);
        id += 1;
        t += Nanos::from_nanos(10); // 100 Mpps offered
    }
    let s = nic.stats();
    assert!(s.rx_drops > 0, "no ingress shedding: {s:?}");
    let mpps = s.tx_packets as f64 / horizon.as_secs_f64() / 1e6;
    assert!(mpps > 15.0, "collapsed under overload: {mpps} Mpps");
}

#[test]
fn expiry_restores_rates_after_a_class_vanishes() {
    // Two equal classes; one stops abruptly. After the expiry window the
    // survivor's θ recovers the whole link without any reconfiguration.
    let p = Policy::parse(
        "fv qdisc add dev nic0 root handle 1: fv\n\
         fv class add dev nic0 parent root classid 1:1 rate 10gbit\n\
         fv class add dev nic0 parent 1:1 classid 1:10\n\
         fv class add dev nic0 parent 1:1 classid 1:20\n\
         fv filter add dev nic0 match ip dport 5001 flowid 1:10\n\
         fv filter add dev nic0 match ip dport 5002 flowid 1:20\n",
    )
    .expect("parses");
    let cfg = NicConfig::agilio_cx_10g();
    let pipeline = FlowValvePipeline::compile(&p, TreeParams::default(), &cfg).expect("compiles");
    let tree = pipeline.tree().clone();
    let mut nic = SmartNic::new(cfg, Box::new(pipeline));

    let f1 = FlowKey::tcp([10, 0, 0, 1], 40_000, [10, 0, 255, 1], 5001);
    let f2 = FlowKey::tcp([10, 0, 0, 2], 40_000, [10, 0, 255, 1], 5002);
    let mut id = 0u64;
    // Phase 1: both hungry for 5 ms.
    let mut t = Nanos::ZERO;
    while t < Nanos::from_millis(5) {
        for f in [f1, f2] {
            let pkt = Packet::new(id, f, 1_518, AppId(0), VfPort(0), t);
            let _ = nic.rx(&pkt, t);
            id += 1;
        }
        t += Nanos::from_nanos(2_000);
    }
    let theta_mid = tree.theta(ClassId(10)).expect("class exists");
    assert!(
        theta_mid < BitRate::from_gbps(7.0),
        "split not applied: {theta_mid}"
    );

    // Phase 2: class 20 stops; only class 10 sends.
    while t < Nanos::from_millis(12) {
        let pkt = Packet::new(id, f1, 1_518, AppId(0), VfPort(0), t);
        let _ = nic.rx(&pkt, t);
        id += 1;
        t += Nanos::from_nanos(1_500);
    }
    let theta_after = tree.theta(ClassId(10)).expect("class exists");
    assert!(
        theta_after > BitRate::from_gbps(8.5),
        "expiry did not restore the survivor: {theta_after}"
    );
}
