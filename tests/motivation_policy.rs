//! Full-stack integration test: FlowValve enforces the paper's motivation
//! policy (Figure 2) end to end — fv script → scheduling tree → NIC model
//! → closed-loop TCP — at a reduced scale that stays fast in debug builds
//! (2 Gbps policy on an 8 Gbps wire; rate *ratios* are scale-free).

use flowvalve::frontend::Policy;
use flowvalve::pipeline::FlowValvePipeline;
use flowvalve::tree::TreeParams;
use hostsim::engine::run;
use hostsim::path::EgressPath;
use hostsim::scenario::{AppSpec, Scenario};
use np_sim::config::NicConfig;
use np_sim::nic::SmartNic;
use sim_core::time::Nanos;
use sim_core::units::BitRate;

/// Scaled motivation policy: 2 Gbps total; NC prior; WS:S2 = 1:2;
/// KVS prior to ML with a 0.4 Gbps guarantee (the 2/10 scale of the paper).
fn policy() -> Policy {
    Policy::parse(
        "fv qdisc add dev nic0 root handle 1: fv default 1:30\n\
         fv class add dev nic0 parent root classid 1:1 name s0 rate 2gbit\n\
         fv class add dev nic0 parent 1:1 classid 1:10 name nc prio 0\n\
         fv class add dev nic0 parent 1:1 classid 1:2 name s1 prio 1\n\
         fv class add dev nic0 parent 1:2 classid 1:30 name ws weight 1\n\
         fv class add dev nic0 parent 1:2 classid 1:22 name s2 weight 2\n\
         fv class add dev nic0 parent 1:22 classid 1:40 name kvs prio 0\n\
         fv class add dev nic0 parent 1:22 classid 1:41 name ml prio 1 rate 400mbit\n\
         fv filter add dev nic0 prio 1 match vf 0 flowid 1:10\n\
         fv filter add dev nic0 prio 2 match vf 1 ip dport 5001 flowid 1:40\n\
         fv filter add dev nic0 prio 3 match vf 1 ip dport 5002 flowid 1:41 borrow 1:22,1:40\n\
         fv filter add dev nic0 prio 4 match vf 2 flowid 1:30 borrow 1:22\n",
    )
    .expect("policy parses")
}

fn scenario() -> Scenario {
    let mut s = Scenario::new(BitRate::from_gbps(8.0), Nanos::from_millis(240));
    s.policy_rate = BitRate::from_gbps(2.0);
    s.time_scale = Nanos::from_millis(8);
    let f = |x: f64| Nanos::from_nanos((8e6 * x) as u64);
    s.apps = vec![
        AppSpec::new("NC", 0, 0, 6000, 1, f(0.0), f(10.0)),
        AppSpec::new("KVS", 1, 1, 5001, 1, f(0.0), f(30.0)),
        AppSpec::new("ML", 2, 1, 5002, 1, f(0.0), f(30.0)),
        AppSpec::new("WS", 3, 2, 8080, 1, f(0.0), f(30.0)),
    ];
    s
}

fn run_motivation() -> (Scenario, hostsim::engine::RunReport) {
    let s = scenario();
    let mut cfg = NicConfig::agilio_cx_40g();
    cfg.line_rate = s.link;
    let params = TreeParams {
        burst_window: Nanos::from_millis(2),
        ..TreeParams::default()
    };
    let pipeline = FlowValvePipeline::compile(&policy(), params, &cfg).expect("policy compiles");
    let path = EgressPath::flowvalve(SmartNic::new(cfg, Box::new(pipeline)));
    let (report, _path) = run(&s, path);
    (s, report)
}

#[test]
fn flowvalve_enforces_the_motivation_policy_end_to_end() {
    let (s, report) = run_motivation();
    let m = |a: &str, f: f64, t: f64| report.mean_gbps(&s, a, f, t);

    // 1. NC is strictly prior: while present it takes nearly the whole
    //    2 Gbps policy despite three competitors.
    let nc = m("NC", 2.0, 10.0);
    assert!(nc > 1.5, "NC got {nc} of ~2.0 Gbps");

    // 2. After NC stops, the ceiling holds (within transient tolerance).
    let total: f64 = ["KVS", "ML", "WS"].iter().map(|a| m(a, 14.0, 30.0)).sum();
    assert!(total < 2.35, "ceiling violated: {total} Gbps");
    assert!(total > 1.6, "link underutilized: {total} Gbps");

    // 3. WS gets ~1/3 of S1 and the S2 subtree ~2/3.
    let ws = m("WS", 14.0, 30.0);
    let s2 = m("KVS", 14.0, 30.0) + m("ML", 14.0, 30.0);
    let ratio = s2 / ws.max(1e-9);
    assert!((1.4..3.0).contains(&ratio), "S2:WS ratio {ratio}, want ~2");

    // 4. KVS is prior to ML inside S2, but ML keeps its 0.4 Gbps floor.
    let kvs = m("KVS", 14.0, 30.0);
    let ml = m("ML", 14.0, 30.0);
    assert!(kvs > ml, "priority inverted: KVS {kvs} vs ML {ml}");
    assert!(ml > 0.3, "ML guarantee broken: {ml} Gbps");
}

#[test]
fn motivation_run_is_deterministic() {
    let a = run_motivation().1;
    let b = run_motivation().1;
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.dropped, b.dropped);
}
