//! Cross-stack integration: raw frame bytes → header parsing → the
//! classifier → QoS labels → the scheduling function → the NIC model.
//! Exercises the byte-level path the fast simulation normally skips.

use classifier::{CacheResult, Classifier, FilterRule, FlowMatch};
use flowvalve::frontend::Policy;
use flowvalve::label::{ClassId, QosLabel};
use flowvalve::pipeline::FlowValvePipeline;
use flowvalve::tree::TreeParams;
use netstack::flow::FlowKey;
use netstack::headers::{encode_frame, parse_frame};
use netstack::packet::{AppId, Packet, VfPort};
use np_sim::config::NicConfig;
use np_sim::nic::{RxOutcome, SmartNic};
use sim_core::time::Nanos;

#[test]
fn bytes_to_label_to_verdict() {
    // 1. Build frames as raw bytes and parse them back.
    let kvs_flow = FlowKey::tcp([10, 0, 1, 1], 41_000, [10, 0, 255, 1], 5001);
    let bulk_flow = FlowKey::tcp([10, 0, 1, 2], 41_001, [10, 0, 255, 1], 9999);
    let kvs_bytes = encode_frame(&kvs_flow, 512, 0).expect("kvs frame encodes");
    let bulk_bytes = encode_frame(&bulk_flow, 1518, 0).expect("bulk frame encodes");
    let kvs_parsed = parse_frame(&kvs_bytes).expect("kvs frame parses");
    let bulk_parsed = parse_frame(&bulk_bytes).expect("bulk frame parses");
    assert_eq!(kvs_parsed.flow, kvs_flow);
    assert_eq!(bulk_parsed.flow, bulk_flow);

    // 2. Classify the parsed flows into QoS labels.
    let policy = Policy::parse(
        "fv qdisc add dev nic0 root handle 1: fv\n\
         fv class add dev nic0 parent root classid 1:1 rate 10gbit\n\
         fv class add dev nic0 parent 1:1 classid 1:10 name kvs prio 0\n\
         fv class add dev nic0 parent 1:1 classid 1:20 name bulk prio 1\n\
         fv filter add dev nic0 match ip dport 5001 flowid 1:10\n\
         fv filter add dev nic0 match any flowid 1:20\n",
    )
    .expect("policy parses");
    let (tree, rules, default) = policy.compile(TreeParams::default()).expect("compiles");
    let mut cls: Classifier<Option<QosLabel>> = Classifier::new(default, 1024);
    for r in rules {
        cls.add_rule(r);
    }

    let (label, result) = cls.classify(&kvs_parsed.flow, VfPort(0));
    assert_eq!(result, CacheResult::Miss);
    assert_eq!(label.expect("kvs matched").leaf(), ClassId(10));
    let (label, _) = cls.classify(&bulk_parsed.flow, VfPort(0));
    assert_eq!(label.expect("bulk matched").leaf(), ClassId(20));

    // 3. The second lookup of the same flow hits the cache.
    let (_, result) = cls.classify(&kvs_parsed.flow, VfPort(0));
    assert_eq!(result, CacheResult::Hit);
    let _ = tree;
}

#[test]
fn full_pipeline_on_the_nic_model() {
    let policy = Policy::parse(
        "fv qdisc add dev nic0 root handle 1: fv default 1:20\n\
         fv class add dev nic0 parent root classid 1:1 rate 1gbit\n\
         fv class add dev nic0 parent 1:1 classid 1:10 name rt prio 0\n\
         fv class add dev nic0 parent 1:1 classid 1:20 name bulk prio 1\n\
         fv filter add dev nic0 match ip dport 443 flowid 1:10\n",
    )
    .expect("policy parses");
    let mut cfg = NicConfig::agilio_cx_10g();
    cfg.line_rate = sim_core::units::BitRate::from_gbps(10.0);
    let pipeline =
        FlowValvePipeline::compile(&policy, TreeParams::default(), &cfg).expect("compiles");
    let tree = pipeline.tree().clone();
    let mut nic = SmartNic::new(cfg, Box::new(pipeline));

    // Offer 2 Gbps of bulk against the 1 Gbps policy: about half passes.
    let bulk = FlowKey::tcp([10, 0, 1, 2], 41_001, [10, 0, 255, 1], 9999);
    let mut transmitted = 0u64;
    let n = 20_000u64;
    for i in 0..n {
        let t = Nanos::from_nanos(i * 6_000); // 12 kbit / 6 us = 2 Gbps
        let pkt = Packet::new(i, bulk, 1_500, AppId(0), VfPort(0), t);
        if matches!(nic.rx(&pkt, t), RxOutcome::Transmit { .. }) {
            transmitted += 1;
        }
    }
    let ratio = transmitted as f64 / n as f64;
    assert!((0.40..0.65).contains(&ratio), "pass ratio {ratio}");

    // The class counters agree with the NIC's accounting.
    let c = tree.counters(ClassId(20)).expect("bulk class exists");
    assert_eq!(c.forwarded, transmitted);
    assert_eq!(c.forwarded + c.dropped, n);
    assert_eq!(nic.stats().sched_drops, c.dropped);
}

#[test]
fn vf_scoped_classification_separates_tenants() {
    // Same 5-tuple arriving on different VFs lands in different classes —
    // the SR-IOV multi-tenant pattern of the paper's Observation 3.
    let mut cls: Classifier<u32> = Classifier::new(0, 64);
    cls.add_rule(FilterRule::new(1, FlowMatch::any().vf(VfPort(1)), 100));
    cls.add_rule(FilterRule::new(1, FlowMatch::any().vf(VfPort(2)), 200));
    let flow = FlowKey::tcp([10, 0, 0, 1], 1000, [10, 0, 0, 2], 80);
    // NB: the cache key is the flow; per-VF classes need per-VF flows.
    // Tenants have distinct source addresses in practice:
    let flow_vm2 = FlowKey::tcp([10, 0, 0, 2], 1000, [10, 0, 0, 2], 80);
    assert_eq!(*cls.classify(&flow, VfPort(1)).0, 100);
    assert_eq!(*cls.classify(&flow_vm2, VfPort(2)).0, 200);
}
