//! Integration tests for the baseline models: the kernel HTB path must
//! exhibit the paper's Figure 3 artifacts end to end, and the DPDK QoS
//! path must enforce policy accurately — those two facts are the paper's
//! entire motivation, so they are pinned here.

use std::collections::HashMap;

use hostsim::engine::run;
use hostsim::path::EgressPath;
use hostsim::scenario::{AppSpec, Scenario};
use netstack::packet::AppId;
use qdisc::dpdk::DpdkQos;
use qdisc::htb::{Handle, Htb, HtbClassSpec, KernelModel};
use sim_core::time::Nanos;
use sim_core::units::BitRate;

/// Two greedy apps on a 2 Gbps policy over an 8 Gbps wire, one prio 0 and
/// one prio 1, equal assured rates — the KVS/ML configuration.
fn two_class_scenario() -> Scenario {
    let mut s = Scenario::new(BitRate::from_gbps(8.0), Nanos::from_millis(160));
    s.policy_rate = BitRate::from_gbps(2.0);
    s.time_scale = Nanos::from_millis(8);
    s.apps = vec![
        AppSpec::new("HI", 0, 0, 5001, 2, Nanos::ZERO, s.horizon),
        AppSpec::new("LO", 1, 1, 5002, 2, Nanos::ZERO, s.horizon),
    ];
    s
}

fn htb_specs(policy: BitRate) -> (Vec<HtbClassSpec>, HashMap<AppId, Handle>) {
    let specs = vec![
        HtbClassSpec::new(Handle(1), None, policy),
        HtbClassSpec::new(Handle(10), Some(Handle(1)), policy.scaled(1, 4))
            .ceil(policy)
            .prio(0),
        HtbClassSpec::new(Handle(20), Some(Handle(1)), policy.scaled(1, 4))
            .ceil(policy)
            .prio(1),
    ];
    let map = HashMap::from([(AppId(0), Handle(10)), (AppId(1), Handle(20))]);
    (specs, map)
}

fn run_htb(model: KernelModel) -> (Scenario, hostsim::engine::RunReport) {
    let s = two_class_scenario();
    let (specs, map) = htb_specs(s.policy_rate);
    let htb = Htb::new(specs, model).expect("hierarchy builds");
    let path = EgressPath::kernel(htb, map, s.link, 2);
    let (report, _path) = run(&s, path);
    (s, report)
}

#[test]
fn centos7_htb_overruns_its_ceiling_under_tcp() {
    let (s, report) = run_htb(KernelModel::centos7());
    let total = report.mean_gbps(&s, "HI", 4.0, 20.0) + report.mean_gbps(&s, "LO", 4.0, 20.0);
    // charge_factor 0.85 sustains ~2.35 Gbps against a 2 Gbps ceiling.
    assert!(total > 2.15, "no overrun: {total} Gbps");
    assert!(total < 2.6, "overrun too large: {total} Gbps");
}

#[test]
fn ideal_htb_holds_its_ceiling() {
    let (s, report) = run_htb(KernelModel::ideal());
    let total = report.mean_gbps(&s, "HI", 4.0, 20.0) + report.mean_gbps(&s, "LO", 4.0, 20.0);
    assert!(total < 2.15, "ideal shaper overran: {total} Gbps");
}

#[test]
fn centos7_htb_ignores_priority_while_borrowing() {
    let (s, report) = run_htb(KernelModel::centos7());
    let hi = report.mean_gbps(&s, "HI", 4.0, 20.0);
    let lo = report.mean_gbps(&s, "LO", 4.0, 20.0);
    let ratio = hi / lo.max(1e-9);
    assert!(
        (0.7..1.4).contains(&ratio),
        "expected ~equal split, got HI {hi} vs LO {lo}"
    );
}

#[test]
fn dpdk_qos_enforces_policy_accurately() {
    let s = two_class_scenario();
    let cfg = qdisc::dpdk::DpdkQosConfig::equal_pipes(s.policy_rate, 2);
    let map: HashMap<AppId, (usize, usize)> =
        HashMap::from([(AppId(0), (0, 0)), (AppId(1), (1, 0))]);
    let path = EgressPath::dpdk(DpdkQos::new(cfg), map, s.link, 2);
    let (report, _path) = run(&s, path);
    let hi = report.mean_gbps(&s, "HI", 4.0, 20.0);
    let lo = report.mean_gbps(&s, "LO", 4.0, 20.0);
    let total = hi + lo;
    // Accurate conformance: never overruns, splits pipes equally.
    assert!(total < 2.1, "DPDK overran: {total} Gbps");
    assert!(total > 1.7, "DPDK underutilized: {total} Gbps");
    let ratio = hi / lo.max(1e-9);
    assert!((0.8..1.25).contains(&ratio), "unequal pipes: {hi} vs {lo}");
}

#[test]
fn kernel_lock_bounds_packet_rate_not_policy() {
    // Small packets: the qdisc lock, not the token buckets, becomes the
    // bottleneck — the §II-A observation that motivates offloading.
    let mut s = two_class_scenario();
    s.frame_len = 256;
    s.mss = 200;
    s.policy_rate = BitRate::from_gbps(8.0); // policy out of the way
    let (specs, map) = htb_specs(s.policy_rate);
    let htb = Htb::new(specs, KernelModel::ideal()).expect("hierarchy builds");
    let path = EgressPath::kernel(htb, map, s.link, 2);
    let (report, _path) = run(&s, path);
    let total = report.mean_gbps(&s, "HI", 4.0, 20.0) + report.mean_gbps(&s, "LO", 4.0, 20.0);
    // ~1.5 Mpps of lock throughput x 2048 bits ≈ 3 Gbps << the 8 Gbps policy.
    assert!(total < 4.5, "lock did not bind: {total} Gbps");
    assert!(total > 1.0, "path collapsed: {total} Gbps");
}
