//! Integration tests for the borrowing subprocedure (paper §IV-C
//! Subprocedure 2 and Figure 9): shadow buckets, preferential interior
//! sharing, and ceilings that bound borrowed bandwidth.

use flowvalve::label::ClassId;
use flowvalve::sched::SimExec;
use flowvalve::tree::{ClassSpec, SchedulingTree, TreeParams};
use np_sim::config::CycleCosts;
use np_sim::cost::CostMeter;
use np_sim::lock::LockTable;
use sim_core::time::Nanos;
use sim_core::units::BitRate;

fn gbps(g: f64) -> BitRate {
    BitRate::from_gbps(g)
}

/// Drives interleaved traffic: each `(label, bits, every_n)` sends one
/// packet of `bits` whenever `i % every_n == 0`; returns per-entry passed
/// bit totals over the run.
fn drive(
    tree: &SchedulingTree,
    flows: &[(&flowvalve::label::QosLabel, u64, u64)],
    steps: u64,
    step: Nanos,
) -> Vec<u64> {
    let mut meter = CostMeter::new(CycleCosts::agilio());
    let mut locks = LockTable::new(4 * tree.len());
    let mut passed = vec![0u64; flows.len()];
    let mut now = Nanos::ZERO;
    for i in 0..steps {
        for (k, &(label, bits, every)) in flows.iter().enumerate() {
            if i % every == 0 {
                let mut exec = SimExec {
                    meter: &mut meter,
                    locks: &mut locks,
                    update_hold: Nanos::from_nanos(300),
                };
                if tree.schedule(label, bits, now, &mut exec).passes() {
                    passed[k] += bits;
                }
            }
        }
        now += step;
    }
    passed
}

fn rate_gbps(bits: u64, steps: u64, step: Nanos) -> f64 {
    bits as f64 / (steps as f64 * step.as_nanos() as f64)
}

/// The Figure 9 tree: S2 (2 Gbps measured subtree) hosting KVS and ML,
/// next to WS — all same priority, weights WS:S2 = 1:2.
fn fig9_tree() -> SchedulingTree {
    SchedulingTree::build(
        vec![
            ClassSpec::new(ClassId(1), "s1", None).rate(gbps(3.0)),
            ClassSpec::new(ClassId(30), "ws", Some(ClassId(1))).weight(1),
            ClassSpec::new(ClassId(22), "s2", Some(ClassId(1))).weight(2),
            ClassSpec::new(ClassId(40), "kvs", Some(ClassId(22))).weight(1),
            ClassSpec::new(ClassId(41), "ml", Some(ClassId(22))).weight(1),
        ],
        TreeParams::default(),
    )
    .expect("tree builds")
}

#[test]
fn interior_class_sharing_is_preferential() {
    // KVS idle; WS and ML both hungry. ML borrows through S2 *and* KVS
    // (interior first), WS only through S2. Because ML's consumption is
    // fully reflected in S2's Γ, S2's lendable rate already excludes what
    // ML took — "the more ML occupies, the less WS can borrow" (Fig. 9).
    let tree = fig9_tree();
    let ws = tree.label(ClassId(30), &[ClassId(22)]).unwrap();
    let ml = tree
        .label(ClassId(41), &[ClassId(22), ClassId(40)])
        .unwrap();
    let steps = 120_000;
    let step = Nanos::from_nanos(500);
    // Both offer ~3 Gbps (1500 bits every 500 ns each).
    let passed = drive(&tree, &[(&ws, 1_500, 1), (&ml, 1_500, 1)], steps, step);
    let ws_g = rate_gbps(passed[0], steps, step);
    let ml_g = rate_gbps(passed[1], steps, step);
    // ML ends up ahead: its own 1 Gbps share plus KVS's idle 1 Gbps
    // preferentially, while WS's borrowing is limited to S2's leftovers.
    assert!(
        ml_g > ws_g,
        "interior preference lost: ws {ws_g} vs ml {ml_g}"
    );
    let total = ws_g + ml_g;
    assert!(total < 3.4, "borrowing overran the root: {total} Gbps");
    assert!(total > 2.2, "work conservation failed: {total} Gbps");
}

#[test]
fn direct_lender_labels_equalize_access() {
    // If both WS's and ML's labels name KVS directly, the two compete for
    // KVS's shadow bucket on equal terms — the paper's alternative wiring.
    // KVS trickles (active but underusing) so its unused share is lent
    // rather than redistributed.
    let tree = fig9_tree();
    let kvs = tree.label(ClassId(40), &[]).unwrap();
    let ws = tree.label(ClassId(30), &[ClassId(40)]).unwrap();
    let ml = tree.label(ClassId(41), &[ClassId(40)]).unwrap();
    let steps = 120_000;
    let step = Nanos::from_nanos(500);
    let passed = drive(
        &tree,
        // KVS ~0.19 Gbps of its 1 Gbps share; WS and ML offer ~3 Gbps each.
        &[(&kvs, 1_500, 16), (&ws, 1_500, 1), (&ml, 1_500, 1)],
        steps,
        step,
    );
    let ws_g = rate_gbps(passed[1], steps, step);
    let ml_g = rate_gbps(passed[2], steps, step);
    let gap = (ml_g - ws_g).abs();
    // Both draw from the same shadow: the asymmetry shrinks markedly
    // versus the preferential wiring (where ML led by ~1 Gbps).
    assert!(
        gap < 0.6,
        "equal-access labels still skewed: ws {ws_g} ml {ml_g}"
    );
    let total = ws_g + ml_g;
    assert!(total > 2.0, "work conservation failed: {total} Gbps");
}

#[test]
fn ceiling_bounds_borrowed_bandwidth() {
    // A leaf with a ceil may not exceed it even with a willing lender.
    let tree = SchedulingTree::build(
        vec![
            ClassSpec::new(ClassId(1), "root", None).rate(gbps(4.0)),
            ClassSpec::new(ClassId(10), "a", Some(ClassId(1))),
            ClassSpec::new(ClassId(20), "b", Some(ClassId(1))).ceil(gbps(2.5)),
        ],
        TreeParams::default(),
    )
    .unwrap();
    let a = tree.label(ClassId(10), &[]).unwrap();
    let b = tree.label(ClassId(20), &[ClassId(10)]).unwrap();
    let steps = 120_000;
    let step = Nanos::from_nanos(500);
    // a trickles (~0.35 Gbps), b offers ~6 Gbps.
    let passed = drive(&tree, &[(&a, 1_500, 8), (&b, 3_000, 1)], steps, step);
    let b_g = rate_gbps(passed[1], steps, step);
    // b's own θ is capped at 2.5; borrowing must not smuggle more in...
    // except for the bounded shadow-burst transient.
    assert!(b_g < 2.9, "ceiling evaded via borrowing: {b_g} Gbps");
    assert!(b_g > 2.0, "b failed to reach its ceiling: {b_g} Gbps");
}

#[test]
fn borrowed_traffic_counts_against_the_path() {
    // Borrowing still records consumption on the borrower's path, so the
    // parent's Γ reflects it (the Figure 9 accounting).
    let tree = fig9_tree();
    let ml = tree.label(ClassId(41), &[ClassId(40)]).unwrap();
    let steps = 60_000;
    let step = Nanos::from_nanos(500);
    let _ = drive(&tree, &[(&ml, 3_000, 1)], steps, step);
    let now = step * steps;
    let s2_gamma = tree.gamma(ClassId(22), now).unwrap().as_gbps();
    assert!(
        s2_gamma > 1.0,
        "interior Γ missed borrowed traffic: {s2_gamma}"
    );
}
