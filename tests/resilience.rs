//! Resilience under injected faults (fv-chaos).
//!
//! Every fault kind the chaos subsystem can inject gets a recovery test:
//! the fault perturbs a saturated run mid-flight, and an fv-scope SLO
//! pins that the scheduler returns to its conformance band once the
//! window clears. Determinism (same plan + seed → byte-identical report)
//! and clean-path neutrality (empty plan → the unfaulted NIC numbers)
//! are pinned here too, plus recovery of the kernel baselines (HTB under
//! a host pause, PRIO/TBF under a wire stall) for comparison.

use std::sync::Arc;

use flowvalve::frontend::Policy;
use flowvalve::pipeline::FlowValvePipeline;
use flowvalve::tree::TreeParams;
use fv_chaos::{run_chaos, ChaosController, FaultPlan, SETTLE};
use fv_scope::{evaluate, SamplerConfig, Slo, TimeSampler};
use fv_telemetry::{Registry, ToJson};
use hostsim::engine::{run, run_with_chaos};
use hostsim::path::EgressPath;
use hostsim::scenario::{AppSpec, Scenario};
use netstack::flow::FlowKey;
use netstack::gen::{ArrivalProcess, LineRateProcess};
use netstack::packet::{AppId, Packet, PacketIdGen, VfPort};
use np_sim::config::NicConfig;
use np_sim::nic::SmartNic;
use qdisc::{Prio, Tbf};
use sim_core::rng::SimRng;
use sim_core::time::Nanos;
use sim_core::units::BitRate;

/// Three-leaf policy shaping a 40G link down to a 10G root.
const POLICY: &str = "\
    fv qdisc add dev nic0 root handle 1: fv default 1:30\n\
    fv class add dev nic0 parent root classid 1:1 name root rate 10gbit\n\
    fv class add dev nic0 parent 1:1 classid 1:10 name kvs rate 4gbit prio 0\n\
    fv class add dev nic0 parent 1:1 classid 1:20 name web rate 3gbit prio 1\n\
    fv class add dev nic0 parent 1:1 classid 1:30 name bulk rate 3gbit prio 2\n\
    fv filter add dev nic0 match ip dport 5001 flowid 1:10\n\
    fv filter add dev nic0 match ip dport 5002 flowid 1:20\n\
    fv filter add dev nic0 match ip dport 5003 flowid 1:30\n";

fn policy() -> Policy {
    Policy::parse(POLICY).expect("policy parses")
}

fn chaos(plan: &str) -> fv_chaos::ChaosReport {
    run_chaos(&policy(), &FaultPlan::parse(plan).expect("plan parses")).expect("run succeeds")
}

#[test]
fn wire_flap_recovers_drains_backlog_and_restores_per_band_rates() {
    let report = chaos(
        "chaos seed 7\n\
         chaos fault wire_flap at 3ms for 2ms permille 200\n",
    );
    // The harness's own fv-scope verdict: aggregate rate back in band.
    assert!(report.passed(), "{}", report.render());
    assert_eq!(report.snapshot.counter("chaos.faults_injected"), 1);
    assert_eq!(report.snapshot.counter("chaos.faults_cleared"), 1);

    let clear = Nanos::from_millis(5);
    let horizon = report.horizon;
    // Per-band: each leaf's post-fault rate returns to its pre-fault
    // conformance window (satellite: RateBetween over the recovery tail).
    let pre = (Nanos::from_millis(1), Nanos::from_millis(3));
    let mut slos = Vec::new();
    for id in ["1:10", "1:20", "1:30"] {
        let series = format!("fv.class.{id}.tx_bits");
        let before = report
            .sampler
            .window_rate(&series, pre.0, pre.1)
            .unwrap_or_else(|| panic!("{series} has pre-fault samples"));
        assert!(before > 0.0, "{series} idle before the fault");
        slos.push(Slo::RateBetween {
            name: format!("{series} back to pre-fault band"),
            series,
            min: 0.80 * before,
            max: 1.20 * before,
        });
    }
    // And the serializer backlog built during the flap has drained back
    // to steady-state occupancy (a few frames in flight on a 10G stream).
    slos.push(Slo::GaugeAtMost {
        name: "tm backlog drained".into(),
        gauge: "chaos.tm_backlog_bytes".into(),
        max: 16 * 1518,
    });
    let verdict = evaluate(
        &slos,
        &report.sampler,
        &report.snapshot,
        (clear + SETTLE, horizon),
    );
    assert!(verdict.passed(), "{}", verdict.render());
    // The flap really did build a queue: peak occupancy during the run
    // dwarfs what is left at the horizon.
    let (peak, final_bytes) = match (
        report.snapshot.get("tm.fifo.backlog_bytes"),
        report.snapshot.get("chaos.tm_backlog_bytes"),
    ) {
        (
            Some(fv_telemetry::MetricValue::Gauge { max, .. }),
            Some(fv_telemetry::MetricValue::Gauge { value, .. }),
        ) => (*max, *value),
        other => panic!("backlog gauges missing: {other:?}"),
    };
    assert!(
        peak > 4 * final_bytes.max(1518),
        "flap built no backlog: peak {peak}, final {final_bytes}"
    );
}

#[test]
fn me_stall_recovers() {
    let report = chaos(
        "chaos seed 7\n\
         chaos fault me_stall at 4ms for 1ms engines 40\n",
    );
    assert!(report.passed(), "{}", report.render());
    assert_eq!(report.recovery.results.len(), 1);
    assert_eq!(report.snapshot.counter("chaos.faults_injected"), 1);
}

#[test]
fn tm_pause_and_corruption_burst_recover() {
    let report = chaos(
        "chaos seed 7\n\
         chaos fault tm_pause at 2ms for 500us\n\
         chaos fault tm_drop at 4ms for 1ms every 2\n",
    );
    assert!(report.passed(), "{}", report.render());
    assert_eq!(report.recovery.results.len(), 2);
    // The corruption burst visibly dropped frames, and both the TM and
    // the NIC counted them.
    assert!(
        report.snapshot.counter("tm.fifo.fault_drops") > 0,
        "corruption burst dropped nothing"
    );
    assert_eq!(
        report.snapshot.counter("tm.fifo.fault_drops"),
        report.snapshot.counter("nic.fault_drops"),
        "TM and NIC disagree on fault drops"
    );
}

#[test]
fn lock_latency_inflation_recovers() {
    let report = chaos(
        "chaos seed 7\n\
         chaos fault lock_slow at 3ms for 2ms permille 8000\n",
    );
    assert!(report.passed(), "{}", report.render());
    assert_eq!(report.snapshot.counter("chaos.faults_injected"), 1);
    assert_eq!(report.snapshot.counter("chaos.faults_cleared"), 1);
}

#[test]
fn host_pause_silences_one_band_then_recovers() {
    let report = chaos(
        "chaos seed 7\n\
         chaos fault host_pause at 3ms for 2ms app 0\n",
    );
    assert!(report.passed(), "{}", report.render());
    assert!(
        report.snapshot.counter("chaos.host_skipped") > 0,
        "pause silenced nothing"
    );
    // The paused app's band went quiet during the window...
    let during = report
        .sampler
        .window_rate(
            "fv.class.1:10.tx_bits",
            Nanos::from_millis(3) + Nanos::from_micros(200),
            Nanos::from_millis(5),
        )
        .unwrap_or(0.0);
    let before = report
        .sampler
        .window_rate(
            "fv.class.1:10.tx_bits",
            Nanos::from_millis(1),
            Nanos::from_millis(3),
        )
        .expect("band active before the pause");
    assert!(
        during < 0.3 * before,
        "pause did not bite: {during:.3e} vs {before:.3e} bits/s"
    );
}

#[test]
fn vf_reset_drops_at_the_edge_then_recovers() {
    let report = chaos(
        "chaos seed 7\n\
         chaos fault vf_reset at 3ms for 1ms vf 1\n",
    );
    assert!(report.passed(), "{}", report.render());
    assert!(report.snapshot.counter("chaos.host_skipped") > 0);
}

#[test]
fn clock_skew_and_cpu_burn_recover() {
    let report = chaos(
        "chaos seed 7\n\
         chaos fault clock_skew at 2ms for 1ms skew 300us\n\
         chaos fault cpu_burn at 5ms for 1ms cycles 400\n",
    );
    assert!(report.passed(), "{}", report.render());
    assert_eq!(report.snapshot.counter("chaos.faults_injected"), 2);
}

#[test]
fn reconfig_halves_throughput_then_restores_it() {
    let report = chaos(
        "chaos seed 7\n\
         chaos fault reconfig at 4ms for 2ms scale_permille 500\n",
    );
    assert!(report.passed(), "{}", report.render());
    let rate = |from_ms: u64, to_ms: u64| {
        report
            .sampler
            .window_rate(
                "nic.tx_bits",
                Nanos::from_millis(from_ms),
                Nanos::from_millis(to_ms),
            )
            .expect("nic.tx_bits sampled")
    };
    let before = rate(2, 4);
    let during = rate(4, 6);
    let after = rate(7, 10);
    assert!(
        during < 0.75 * before,
        "reconfig did not bite: {during:.3e} vs {before:.3e}"
    );
    assert!(
        after > 0.85 * before,
        "throughput not restored: {after:.3e} vs {before:.3e}"
    );
}

#[test]
fn same_plan_and_seed_replays_byte_identically() {
    let plan = "chaos seed 42\n\
                chaos fault wire_flap at 3ms for 2ms permille 250\n\
                chaos fault tm_drop at 6ms for 1ms every 3\n";
    let a = chaos(plan).to_json().to_pretty();
    let b = chaos(plan).to_json().to_pretty();
    assert_eq!(a, b, "chaos replay must be byte-identical");
}

/// An empty plan must be invisible: the NIC forwards exactly what an
/// uninstrumented run of the same workload forwards.
#[test]
fn empty_plan_matches_a_run_with_no_injector_installed() {
    let report = chaos("chaos seed 1\n");

    // Replay the identical workload on a SmartNic with no fault injector
    // and no chaos hooks at all.
    let pol = policy();
    let cfg = NicConfig::agilio_cx_40g();
    let pipeline =
        FlowValvePipeline::compile(&pol, TreeParams::default(), &cfg).expect("policy compiles");
    let line = cfg.line_rate;
    let framing = cfg.framing;
    let registry = Registry::new();
    let mut nic = SmartNic::with_registry(cfg, Box::new(pipeline), &registry);
    if let Some(p) = nic.decider_as::<FlowValvePipeline>() {
        p.attach_telemetry(&registry);
    }
    let mut flows: Vec<(FlowKey, VfPort)> = Vec::new();
    for (i, f) in pol.filters.iter().enumerate() {
        let m = &f.matcher;
        flows.push((
            FlowKey::tcp(
                [10, 0, 0, 10 + i as u8],
                m.src_port.unwrap_or(41_000 + i as u16),
                [10, 0, 255, 1],
                m.dst_port.unwrap_or(5_000 + i as u16),
            ),
            m.vf.unwrap_or(VfPort(i as u8)),
        ));
    }
    let horizon = Nanos::from_millis(10);
    let mut rng = SimRng::seed(1);
    let mut ids = PacketIdGen::new();
    let offered = line.scaled(3, 2 * flows.len() as u64);
    let mut gens: Vec<LineRateProcess> = flows
        .iter()
        .map(|_| LineRateProcess::new(offered, 1518, framing))
        .collect();
    let mut next: Vec<Nanos> = gens
        .iter_mut()
        .map(|g| Nanos::ZERO + g.next_arrival(&mut rng).0)
        .collect();
    loop {
        let (idx, &t) = next
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .expect("flows non-empty");
        if t >= horizon {
            break;
        }
        let (flow, vf) = flows[idx];
        let pkt = Packet::new(ids.next_id(), flow, 1518, AppId(idx as u16), vf, t);
        let _ = nic.rx(&pkt, t);
        next[idx] = t + gens[idx].next_arrival(&mut rng).0;
    }
    let clean = registry.snapshot(horizon);

    for c in [
        "nic.offered",
        "nic.tx_packets",
        "nic.tx_bits",
        "nic.sched_drops",
        "nic.tail_drops",
        "nic.rx_drops",
        "fv.class.1:10.tx_bits",
        "fv.class.1:20.tx_bits",
        "fv.class.1:30.tx_bits",
    ] {
        assert_eq!(
            report.snapshot.counter(c),
            clean.counter(c),
            "empty plan perturbed {c}"
        );
    }
}

/// FlowValve vs kernel HTB through the full host stack: the same host
/// pause hits both egress paths, and both must return to their pre-fault
/// throughput once the application resumes.
#[test]
fn host_pause_recovery_flowvalve_vs_htb() {
    use qdisc::{Handle, Htb, HtbClassSpec, KernelModel};
    use std::collections::HashMap;

    fn scenario() -> Scenario {
        let mut s = Scenario::new(BitRate::from_gbps(8.0), Nanos::from_millis(160));
        s.policy_rate = BitRate::from_gbps(2.0);
        s.time_scale = Nanos::from_millis(8);
        s.apps = vec![
            AppSpec::new("HI", 0, 0, 5001, 2, Nanos::ZERO, s.horizon),
            AppSpec::new("LO", 1, 1, 5002, 2, Nanos::ZERO, s.horizon),
        ];
        s
    }
    // Pause app 0 (HI) for figure-seconds 5..10 (40 ms at 8 ms/s).
    let hook = |reg: &Registry| -> Arc<ChaosController> {
        Arc::new(ChaosController::new(
            FaultPlan::parse("chaos fault host_pause at 40ms for 40ms app 0\n").unwrap(),
            reg,
        ))
    };

    let fv_policy = Policy::parse(
        "fv qdisc add dev nic0 root handle 1: fv\n\
         fv class add dev nic0 parent root classid 1:1 name root rate 2gbit\n\
         fv class add dev nic0 parent 1:1 classid 1:10 name hi rate 1gbit ceil 2gbit\n\
         fv class add dev nic0 parent 1:1 classid 1:20 name lo rate 1gbit ceil 2gbit\n\
         fv filter add dev nic0 match ip dport 5001 flowid 1:10\n\
         fv filter add dev nic0 match ip dport 5002 flowid 1:20\n",
    )
    .unwrap();

    let s = scenario();
    let mut cfg = NicConfig::agilio_cx_40g();
    cfg.line_rate = s.link;
    let pipeline =
        FlowValvePipeline::compile(&fv_policy, TreeParams::default(), &cfg).expect("compiles");
    let fv_reg = Registry::new();
    let fv_path = EgressPath::flowvalve(SmartNic::new(cfg, Box::new(pipeline)));
    let (fv_report, _) = run_with_chaos(&s, fv_path, Some(hook(&fv_reg)));

    let htb = Htb::new(
        vec![
            HtbClassSpec::new(Handle(1), None, s.policy_rate),
            HtbClassSpec::new(Handle(10), Some(Handle(1)), s.policy_rate.scaled(1, 2))
                .ceil(s.policy_rate),
            HtbClassSpec::new(Handle(20), Some(Handle(1)), s.policy_rate.scaled(1, 2))
                .ceil(s.policy_rate),
        ],
        KernelModel::ideal(),
    )
    .expect("hierarchy builds");
    let map = HashMap::from([(AppId(0), Handle(10)), (AppId(1), Handle(20))]);
    let htb_reg = Registry::new();
    let htb_path = EgressPath::kernel(htb, map, s.link, 2);
    let (htb_report, _) = run_with_chaos(&s, htb_path, Some(hook(&htb_reg)));

    for (name, report) in [("flowvalve", &fv_report), ("htb", &htb_report)] {
        let before = report.mean_gbps(&s, "HI", 1.0, 5.0);
        let during = report.mean_gbps(&s, "HI", 6.0, 10.0);
        let after = report.mean_gbps(&s, "HI", 12.0, 19.0);
        assert!(before > 0.3, "{name}: HI idle before the pause: {before}");
        assert!(
            during < 0.3 * before,
            "{name}: pause did not bite: {during} vs {before}"
        );
        assert!(
            after > 0.7 * before,
            "{name}: HI did not recover: {after} vs {before}"
        );
    }
}

/// PRIO and TBF under a simulated wire stall: the backlog drains and the
/// dequeue rate returns to its pre-stall band (fv-scope RateBetween).
#[test]
fn prio_and_tbf_baselines_recover_from_a_wire_stall() {
    let flow = FlowKey::tcp([10, 0, 0, 1], 41_000, [10, 0, 255, 1], 5001);
    let horizon = Nanos::from_millis(40);
    let stall = (Nanos::from_millis(15), Nanos::from_millis(20));
    let step = Nanos::from_micros(15); // ~0.8 Gbit/s of 1518 B frames
    let wire = |n: u64| n * 12_144; // bits on the wire after n dequeues

    // --- TBF: rate 1 Gbit/s, so the offered load fits with headroom.
    let reg = Registry::new();
    let mut tbf = Tbf::new(BitRate::from_gbps(1.0), 30_000, 300_000, 256);
    tbf.attach_telemetry(&reg);
    let mut sampler = TimeSampler::new(
        &reg,
        SamplerConfig::default().with_interval(Nanos::from_micros(500)),
    );
    let mut ids = PacketIdGen::new();
    let mut t = Nanos::ZERO;
    while t < horizon {
        sampler.advance_to(t);
        let pkt = Packet::new(ids.next_id(), flow, 1518, AppId(0), VfPort(0), t);
        let _ = tbf.enqueue(pkt);
        if !(t >= stall.0 && t < stall.1) {
            while tbf.dequeue(t).is_some() {}
        }
        t += step;
    }
    sampler.advance_to(horizon);
    let snap = reg.snapshot(horizon);
    let slos = [
        Slo::RateBetween {
            name: "tbf dequeue rate back in band".into(),
            series: "tbf.dequeued_bits".into(),
            min: 0.5e9,
            max: 1.1e9,
        },
        Slo::GaugeAtMost {
            name: "tbf backlog drained".into(),
            gauge: "tbf.backlog_pkts".into(),
            max: 4,
        },
    ];
    let verdict = evaluate(
        &slos,
        &sampler,
        &snap,
        (stall.1 + Nanos::from_millis(2), horizon),
    );
    assert!(verdict.passed(), "{}", verdict.render());
    assert!(wire(snap.counter("tbf.dequeued")) > 0);

    // --- PRIO: two bands, wire paced at one frame per step.
    let reg = Registry::new();
    let mut prio = Prio::new(2, 1 << 20, 512);
    prio.attach_telemetry(&reg);
    let mut sampler = TimeSampler::new(
        &reg,
        SamplerConfig::default().with_interval(Nanos::from_micros(500)),
    );
    let mut ids = PacketIdGen::new();
    let mut t = Nanos::ZERO;
    let mut i = 0u64;
    while t < horizon {
        sampler.advance_to(t);
        let pkt = Packet::new(ids.next_id(), flow, 1518, AppId(0), VfPort(0), t);
        let _ = prio.enqueue((i % 2) as usize, pkt);
        if !(t >= stall.0 && t < stall.1) {
            // The wire takes at most two frames per step: it keeps up with
            // arrivals but needs time to burn down the stall backlog.
            for _ in 0..2 {
                if prio.dequeue_at(t).is_none() {
                    break;
                }
            }
        }
        t += step;
        i += 1;
    }
    sampler.advance_to(horizon);
    let snap = reg.snapshot(horizon);
    let per_sec = 1e9 / step.as_nanos() as f64;
    let slos = [
        Slo::RateBetween {
            name: "prio dequeue rate back in band".into(),
            series: "prio.dequeued".into(),
            min: 0.9 * per_sec,
            max: 2.1 * per_sec,
        },
        Slo::GaugeAtMost {
            name: "prio backlog drained".into(),
            gauge: "prio.backlog_pkts".into(),
            max: 4,
        },
    ];
    let verdict = evaluate(
        &slos,
        &sampler,
        &snap,
        (stall.1 + Nanos::from_millis(2), horizon),
    );
    assert!(verdict.passed(), "{}", verdict.render());
}

/// The unfaulted hostsim engine (`run`) and `run_with_chaos(.., None)`
/// stay interchangeable — the chaos plumbing costs the clean path nothing.
#[test]
fn hostsim_clean_path_is_untouched_by_the_chaos_plumbing() {
    let mut s = Scenario::new(BitRate::from_gbps(4.0), Nanos::from_millis(40));
    s.policy_rate = BitRate::from_gbps(2.0);
    s.apps = vec![AppSpec::new("A", 0, 0, 9000, 2, Nanos::ZERO, s.horizon)];
    let mk = || {
        let cfg = {
            let mut c = NicConfig::agilio_cx_40g();
            c.line_rate = BitRate::from_gbps(4.0);
            c
        };
        let p = Policy::parse(
            "fv qdisc add dev nic0 root handle 1: fv default 1:10\n\
             fv class add dev nic0 parent root classid 1:1 name root rate 2gbit\n\
             fv class add dev nic0 parent 1:1 classid 1:10 name all rate 2gbit\n\
             fv filter add dev nic0 match any flowid 1:10\n",
        )
        .unwrap();
        let pipeline = FlowValvePipeline::compile(&p, TreeParams::default(), &cfg).unwrap();
        EgressPath::flowvalve(SmartNic::new(cfg, Box::new(pipeline)))
    };
    let (plain, _) = run(&s, mk());
    let (chaosless, _) = run_with_chaos(&s, mk(), None);
    assert_eq!(plain.delivered, chaosless.delivered);
    assert_eq!(plain.dropped, chaosless.dropped);
}
