//! Integration tests for FlowValve fair queueing: equal splits, work
//! conservation as apps come and go, and robustness to asymmetric
//! connection counts — the properties behind the paper's Figure 11(b).

use flowvalve::pipeline::FlowValvePipeline;
use flowvalve::tree::TreeParams;
use hostsim::engine::{run, RunReport};
use hostsim::path::EgressPath;
use hostsim::policies;
use hostsim::scenario::{AppSpec, Scenario};
use np_sim::config::NicConfig;
use np_sim::nic::SmartNic;
use sim_core::time::Nanos;
use sim_core::units::BitRate;

const LINK: f64 = 4.0;

/// Four staged apps on a 4 Gbps link (scaled-down Figure 11(b)).
fn scenario(conns: [usize; 4]) -> Scenario {
    let mut s = Scenario::new(BitRate::from_gbps(LINK), Nanos::from_millis(200));
    s.time_scale = Nanos::from_millis(8);
    let f = |x: f64| Nanos::from_nanos((8e6 * x) as u64);
    s.apps = vec![
        AppSpec::new("App0", 0, 0, 9000, conns[0], f(0.0), f(20.0)),
        AppSpec::new("App1", 1, 1, 9001, conns[1], f(5.0), f(25.0)),
        AppSpec::new("App2", 2, 2, 9002, conns[2], f(10.0), f(25.0)),
        AppSpec::new("App3", 3, 3, 9003, conns[3], f(15.0), f(25.0)),
    ];
    s
}

fn run_fair(s: &Scenario) -> RunReport {
    let mut cfg = NicConfig::agilio_cx_40g();
    cfg.line_rate = s.link;
    let policy = policies::fair_queueing_fv(s.link, s);
    let params = TreeParams {
        burst_window: Nanos::from_millis(1),
        ..TreeParams::default()
    };
    let pipeline = FlowValvePipeline::compile(&policy, params, &cfg).expect("compiles");
    let (report, _path) = run(
        s,
        EgressPath::flowvalve(SmartNic::new(cfg, Box::new(pipeline))),
    );
    report
}

#[test]
fn equal_split_among_active_apps_at_every_stage() {
    let s = scenario([2, 2, 2, 2]);
    let report = run_fair(&s);
    let m = |a: &str, f: f64, t: f64| report.mean_gbps(&s, a, f, t);

    // One app: takes (almost) everything.
    assert!(m("App0", 2.0, 5.0) > 0.7 * LINK, "solo app underutilizes");

    // Two apps: ~half each.
    for a in ["App0", "App1"] {
        let g = m(a, 7.0, 10.0);
        assert!(
            (g - LINK / 2.0).abs() < 0.30 * LINK / 2.0,
            "{a} got {g} of {}",
            LINK / 2.0
        );
    }

    // Four apps: ~quarter each.
    for a in ["App0", "App1", "App2", "App3"] {
        let g = m(a, 17.0, 20.0);
        assert!(
            (g - LINK / 4.0).abs() < 0.35 * LINK / 4.0,
            "{a} got {g} of {}",
            LINK / 4.0
        );
    }
}

#[test]
fn departures_are_work_conserving() {
    let s = scenario([2, 2, 2, 2]);
    let report = run_fair(&s);
    // After App0 leaves at 20, the remaining three share the link.
    let total: f64 = ["App1", "App2", "App3"]
        .iter()
        .map(|a| report.mean_gbps(&s, a, 22.0, 25.0))
        .sum();
    assert!(
        total > 0.75 * LINK,
        "link underutilized after departure: {total}"
    );
}

#[test]
fn fairness_is_robust_to_connection_counts() {
    // 2 vs 12 connections: class-based fairness must still hold (the
    // paper varies 4..256 connections with unchanged results).
    let s = scenario([2, 12, 2, 12]);
    let report = run_fair(&s);
    let a0 = report.mean_gbps(&s, "App0", 8.0, 10.0);
    let a1 = report.mean_gbps(&s, "App1", 8.0, 10.0);
    let ratio = a0 / a1.max(1e-9);
    assert!(
        (0.6..1.6).contains(&ratio),
        "connection count broke fairness: {a0} vs {a1}"
    );
}

#[test]
fn drops_shape_instead_of_queueing() {
    let s = scenario([2, 2, 2, 2]);
    let report = run_fair(&s);
    // Rate control by early drop: drops happen, and the delay stays
    // bounded (no multi-millisecond standing queues).
    assert!(report.dropped > 0, "no drops under 4x oversubscription");
    let p99_us = report.delay.quantile(0.99) as f64 / 1e3;
    assert!(p99_us < 2_500.0, "standing queue built up: p99 {p99_us} us");
}
