//! Integration: qdisc chaining across crates, plus pcap export of the
//! surviving traffic.

use flowvalve::chain::{ChainLabel, QdiscChain};
use flowvalve::label::ClassId;
use flowvalve::sched::RealExec;
use flowvalve::tree::{ClassSpec, SchedulingTree, TreeParams};
use netstack::flow::FlowKey;
use netstack::packet::{AppId, Packet, VfPort};
use netstack::trace::PcapWriter;
use sim_core::time::Nanos;
use sim_core::units::BitRate;
use std::sync::Arc;

#[test]
fn prio_tree_chained_with_rate_tree() {
    // Stage 1: a tenant's PRIO tree over its 2 Gbps allotment (hi starves
    // lo). Stage 2: a 3 Gbps port-level cap (non-binding for this tenant
    // but still enforced; the unit test `the_tightest_stage_governs`
    // covers the binding case). hi takes the whole allotment; lo gets
    // (almost) nothing. Note priority only binds where its *own* tree is
    // the bottleneck: two equal-rate stages would fight over burst phase.
    let prio = Arc::new(
        SchedulingTree::build(
            vec![
                ClassSpec::new(ClassId(1), "root", None).rate(BitRate::from_gbps(2.0)),
                ClassSpec::new(ClassId(10), "hi", Some(ClassId(1))).prio(0),
                ClassSpec::new(ClassId(20), "lo", Some(ClassId(1))).prio(1),
            ],
            TreeParams::default(),
        )
        .expect("prio tree builds"),
    );
    let cap = Arc::new(
        SchedulingTree::build(
            vec![ClassSpec::new(ClassId(1), "cap", None).rate(BitRate::from_gbps(3.0))],
            TreeParams::default(),
        )
        .expect("cap tree builds"),
    );
    let chain = QdiscChain::new(vec![Arc::clone(&prio), Arc::clone(&cap)]);
    let hi = ChainLabel::new(vec![
        prio.label(ClassId(10), &[]).expect("hi exists"),
        cap.label(ClassId(1), &[]).expect("cap root exists"),
    ]);
    let lo = ChainLabel::new(vec![
        prio.label(ClassId(20), &[]).expect("lo exists"),
        cap.label(ClassId(1), &[]).expect("cap root exists"),
    ]);

    let mut exec = RealExec;
    let mut now = Nanos::ZERO;
    let mut passed = [0u64; 2];
    let n = 80_000;
    for _ in 0..n {
        // Each offers ~4 Gbps (12 kbit every 3 us).
        if chain.schedule(&hi, 12_000, now, &mut exec).passes() {
            passed[0] += 12_000;
        }
        if chain.schedule(&lo, 12_000, now, &mut exec).passes() {
            passed[1] += 12_000;
        }
        now += Nanos::from_micros(3);
    }
    let secs = now.as_secs_f64();
    let hi_g = passed[0] as f64 / secs / 1e9;
    let lo_g = passed[1] as f64 / secs / 1e9;
    assert!(
        (1.6..2.4).contains(&hi_g),
        "hi got {hi_g} Gbps of the 2 Gbps cap"
    );
    assert!(lo_g < 0.8, "lo was not starved: {lo_g} Gbps");
    assert!(hi_g + lo_g < 2.5, "cap exceeded: {}", hi_g + lo_g);
}

#[test]
fn surviving_traffic_exports_to_pcap() {
    // Schedule packets through a tree and write the survivors to a pcap
    // buffer; the trace must parse back as valid frames.
    let tree = SchedulingTree::build(
        vec![
            ClassSpec::new(ClassId(1), "root", None).rate(BitRate::from_gbps(1.0)),
            ClassSpec::new(ClassId(10), "only", Some(ClassId(1))),
        ],
        TreeParams::default(),
    )
    .expect("tree builds");
    let label = tree.label(ClassId(10), &[]).expect("leaf exists");
    let flow = FlowKey::tcp([10, 0, 0, 1], 40_000, [10, 0, 255, 1], 443);

    let mut buf = Vec::new();
    let mut pcap = PcapWriter::with_snaplen(&mut buf, 128).expect("header writes");
    let mut exec = RealExec;
    let mut now = Nanos::ZERO;
    let mut written = 0u64;
    for i in 0..5_000u64 {
        now += Nanos::from_micros(6); // 2 Gbps offered against 1 Gbps
        let pkt = Packet::new(i, flow, 1_518, AppId(0), VfPort(0), now);
        if tree
            .schedule(&label, pkt.frame_bits(), now, &mut exec)
            .passes()
        {
            pcap.write_packet(&pkt, now).expect("record writes");
            written += 1;
        }
    }
    assert_eq!(pcap.packets(), written);
    // Roughly half survive the 2:1 oversubscription.
    let ratio = written as f64 / 5_000.0;
    assert!((0.35..0.7).contains(&ratio), "pass ratio {ratio}");
    // The buffer is a structurally valid pcap: global header + records.
    assert_eq!(buf.len() as u64, 24 + written * (16 + 128));
    // And the first embedded frame parses.
    let first = &buf[24 + 16..24 + 16 + 128];
    let parsed = netstack::headers::parse_frame(first).expect("valid frame");
    assert_eq!(parsed.flow.dst_port, 443);
}
